package perfbench

import (
	"strings"
	"testing"
)

func sampleReport() Report {
	return Report{
		SchemaVersion: 1,
		Mode:          "full",
		Micro: map[string]Comparison{
			"catalog_read": {
				Baseline:  Measurement{NsPerOp: 1000, AllocsPerOp: 9},
				Optimized: Measurement{NsPerOp: 100, AllocsPerOp: 0},
				Speedup:   10,
			},
			"write_json": {
				Baseline:  Measurement{NsPerOp: 900, AllocsPerOp: 12},
				Optimized: Measurement{NsPerOp: 600, AllocsPerOp: 5},
				Speedup:   1.5,
			},
		},
		Stack: &StackResult{ThroughputRPS: 40, Errors: 0},
	}
}

func TestGatePassesOnIdenticalReports(t *testing.T) {
	base := sampleReport()
	if v := Gate(base, sampleReport()); len(v) != 0 {
		t.Fatalf("identical reports violated the gate: %v", v)
	}
}

func TestGateCatchesSpeedupRegression(t *testing.T) {
	base, cur := sampleReport(), sampleReport()
	c := cur.Micro["catalog_read"]
	c.Speedup = base.Micro["catalog_read"].Speedup * 0.8 // >15% worse
	cur.Micro["catalog_read"] = c
	v := Gate(base, cur)
	if len(v) != 1 || !strings.Contains(v[0], "catalog_read") {
		t.Fatalf("gate = %v, want one catalog_read speedup violation", v)
	}
}

func TestGateToleratesSmallDrift(t *testing.T) {
	base, cur := sampleReport(), sampleReport()
	c := cur.Micro["write_json"]
	c.Speedup *= 0.9 // within the 15% band
	cur.Micro["write_json"] = c
	if v := Gate(base, cur); len(v) != 0 {
		t.Fatalf("10%% drift tripped the gate: %v", v)
	}
}

func TestGateCatchesAllocGrowth(t *testing.T) {
	base, cur := sampleReport(), sampleReport()
	c := cur.Micro["write_json"]
	c.Optimized.AllocsPerOp = 9 // ceiling is 5*1.15+1 = 6
	cur.Micro["write_json"] = c
	v := Gate(base, cur)
	if len(v) != 1 || !strings.Contains(v[0], "allocs/op") {
		t.Fatalf("gate = %v, want one alloc violation", v)
	}
	// Zero-alloc paths keep the +1 slack but no more.
	base2, cur2 := sampleReport(), sampleReport()
	c2 := cur2.Micro["catalog_read"]
	c2.Optimized.AllocsPerOp = 1
	cur2.Micro["catalog_read"] = c2
	if v := Gate(base2, cur2); len(v) != 0 {
		t.Fatalf("+1 alloc on a zero-alloc path tripped the gate: %v", v)
	}
	c2.Optimized.AllocsPerOp = 2
	cur2.Micro["catalog_read"] = c2
	if v := Gate(base2, cur2); len(v) != 1 {
		t.Fatalf("+2 allocs on a zero-alloc path passed the gate: %v", v)
	}
}

func TestGateCatchesStackErrorsAndMissingPaths(t *testing.T) {
	base, cur := sampleReport(), sampleReport()
	cur.Stack.Errors = 3
	delete(cur.Micro, "write_json")
	v := Gate(base, cur)
	if len(v) != 2 {
		t.Fatalf("gate = %v, want missing-path + stack-error violations", v)
	}
}

func TestSummaryMentionsEveryTrackedPath(t *testing.T) {
	rep := sampleReport()
	rep.StackBefore = &StackResult{ThroughputRPS: 30}
	s := Summary(rep)
	for _, want := range []string{"catalog_read", "write_json", "speedup", "seed baseline"} {
		if !strings.Contains(s, want) {
			t.Fatalf("summary lacks %q:\n%s", want, s)
		}
	}
}
