package perfbench

// The write-mix harness behind BENCH_PR8.json: a closed-loop
// browse:checkout ≈ 70:30 population drives svc://persistence directly —
// through the same registry-backed balanced client the services use, so
// shard-aware routing is on the measured path — at 1, 2, and 4
// persistence shards. The commit pipeline is configured with a finite
// simulated flush cost, which makes per-shard commit bandwidth roughly
// MaxBatch/FlushCost: at one shard the checkout plane saturates on the
// group-commit flush, and adding shards adds commit bandwidth. The gate
// tracks the 4-vs-1-shard checkout throughput ratio (machine-portable:
// both runs execute on the same host) plus correctness: zero errors and
// stored orders exactly equal to acked checkouts (no duplicates, no
// loss) in every run.

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/db"
	"repro/internal/httpkit"
	"repro/internal/metrics"
	"repro/internal/services/persistence"
	"repro/internal/services/registry"
	"repro/internal/teastore"
)

// writeMixShards are the shard counts each run sweeps.
var writeMixShards = []int{1, 2, 4}

// writeCommitConfig makes commit bandwidth finite and visible on CI-sized
// hosts: MaxBatch/FlushCost ≈ 800 checkouts/s per shard, and MaxPending
// bounds the backlog so one-shard saturation shows up as backpressure
// latency, not an unbounded queue.
var writeCommitConfig = db.CommitConfig{
	MaxBatch:   4,
	FlushCost:  5 * time.Millisecond,
	MaxPending: 64,
}

// checkoutShare is the checkout fraction of the closed-loop mix.
const checkoutShare = 0.30

// WriteRun is one closed-loop write-mix run at a fixed shard count.
type WriteRun struct {
	Shards        int     `json:"shards"`
	CheckoutRPS   float64 `json:"checkout_rps"`
	BrowseRPS     float64 `json:"browse_rps"`
	CheckoutP50Ms float64 `json:"checkout_p50_ms"`
	CheckoutP99Ms float64 `json:"checkout_p99_ms"`
	Checkouts     int64   `json:"checkouts"`
	Browses       int64   `json:"browses"`
	Errors        int64   `json:"errors"`
	// AckedCheckouts counts distinct successfully acked idempotency keys;
	// StoredOrders counts orders the cluster actually committed beyond the
	// seed. Equal ⇔ zero duplicated and zero lost checkouts.
	AckedCheckouts int64   `json:"acked_checkouts"`
	StoredOrders   int64   `json:"stored_orders"`
	DurationSec    float64 `json:"duration_sec"`
}

// WriteReport is the BENCH_PR8.json document.
type WriteReport struct {
	SchemaVersion int             `json:"schema_version"`
	Mode          string          `json:"mode"` // "quick" or "full"
	GoVersion     string          `json:"go_version"`
	GOMAXPROCS    int             `json:"gomaxprocs"`
	Mix           string          `json:"mix"`
	Commit        db.CommitConfig `json:"commit"`
	Workers       int             `json:"workers"`
	Runs          []WriteRun      `json:"runs"`
	// SpeedupCheckout4v1 is checkout throughput at 4 shards over 1 shard —
	// the scaling ratio the gate tracks. P99Ratio4v1 is checkout p99 at 4
	// shards over 1 shard (≤1 means sharding held or improved tail
	// latency).
	SpeedupCheckout4v1 float64 `json:"speedup_checkout_4v1"`
	P99Ratio4v1        float64 `json:"p99_ratio_4v1"`
}

// RunWriteMix sweeps the write-heavy closed loop across the shard counts
// and assembles the report.
func RunWriteMix(opts Options) (WriteReport, error) {
	rep := WriteReport{
		SchemaVersion: 1,
		Mode:          "full",
		GoVersion:     runtime.Version(),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		Mix:           fmt.Sprintf("browse:checkout %d:%d", int((1-checkoutShare)*100), int(checkoutShare*100)),
		Commit:        writeCommitConfig,
		Workers:       64,
	}
	duration := 8 * time.Second
	if opts.Quick {
		rep.Mode = "quick"
		duration = 3 * time.Second
	}
	for _, shards := range writeMixShards {
		opts.logf("write mix: %d shard(s), %d workers, %s measured", shards, rep.Workers, duration)
		run, err := runWriteMixOnce(shards, rep.Workers, duration)
		if err != nil {
			return rep, fmt.Errorf("write mix at %d shards: %w", shards, err)
		}
		opts.logf("write mix: %d shard(s) → %.0f checkouts/s p99=%.0fms errors=%d stored=%d acked=%d",
			shards, run.CheckoutRPS, run.CheckoutP99Ms, run.Errors, run.StoredOrders, run.AckedCheckouts)
		rep.Runs = append(rep.Runs, run)
	}
	one, four := findRun(rep.Runs, 1), findRun(rep.Runs, 4)
	if one != nil && four != nil && one.CheckoutRPS > 0 {
		rep.SpeedupCheckout4v1 = four.CheckoutRPS / one.CheckoutRPS
		if one.CheckoutP99Ms > 0 {
			rep.P99Ratio4v1 = four.CheckoutP99Ms / one.CheckoutP99Ms
		}
	}
	return rep, nil
}

func findRun(runs []WriteRun, shards int) *WriteRun {
	for i := range runs {
		if runs[i].Shards == shards {
			return &runs[i]
		}
	}
	return nil
}

// runWriteMixOnce boots one stack at the given shard count and drives it.
func runWriteMixOnce(shards, workers int, duration time.Duration) (WriteRun, error) {
	spec := db.GenerateSpec{
		Categories:          3,
		ProductsPerCategory: 20,
		Users:               64,
		SeedOrders:          60,
		Seed:                7,
	}
	st, err := teastore.Start(teastore.Config{
		Catalog:           spec,
		PersistenceShards: shards,
		Commit:            writeCommitConfig,
	})
	if err != nil {
		return WriteRun{}, err
	}
	defer st.Shutdown(context.Background())

	// The measured client is the same wiring the services use: a
	// registry-backed balancer resolving svc://persistence, which learns
	// the shard map from the instance listing and pins each checkout to
	// the replica fronting the owning shard.
	resolver := registry.NewClient(st.RegistryURL, httpkit.NewClient(2*time.Second))
	bal := httpkit.NewBalancer(resolver, httpkit.BalancerConfig{})
	hc := httpkit.NewClient(10*time.Second,
		httpkit.WithRetry(httpkit.RetryPolicy{}),
		httpkit.WithBalancer(bal))
	pc := persistence.NewClient(httpkit.BalancedURL("persistence"), hc)

	ctx := context.Background()
	cats, err := pc.Categories(ctx)
	if err != nil || len(cats) == 0 {
		return WriteRun{}, fmt.Errorf("discovering catalog: %w", err)
	}
	var productIDs []int64
	for _, c := range cats {
		page, err := pc.Products(ctx, c.ID, 0, spec.ProductsPerCategory)
		if err != nil {
			return WriteRun{}, fmt.Errorf("discovering products: %w", err)
		}
		for _, p := range page.Products {
			productIDs = append(productIDs, p.ID)
		}
	}
	userIDs := make([]int64, spec.Users)
	for i := range userIDs {
		u, err := pc.UserByEmail(ctx, db.EmailFor(i))
		if err != nil {
			return WriteRun{}, fmt.Errorf("discovering users: %w", err)
		}
		userIDs[i] = u.ID
	}
	cluster := st.PersistenceCluster()
	cluster.Flush()
	seeded := int64(cluster.NumOrders())

	var (
		checkouts, browses, errs, acked atomic.Int64
		mu                              sync.Mutex
		checkoutLat                     metrics.Histogram
		wg                              sync.WaitGroup
	)
	// The deadline gates loop ENTRY only; each issued call runs on the
	// background context and completes. A call cancelled mid-flight could
	// be committed server-side without being counted acked, which would
	// make the stored==acked correctness check unfalsifiable.
	runCtx, cancel := context.WithTimeout(ctx, duration)
	defer cancel()
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(id)*7919 + 1))
			var local metrics.Histogram
			for runCtx.Err() == nil {
				if rng.Float64() < checkoutShare {
					userID := userIDs[rng.Intn(len(userIDs))]
					items := []db.OrderItem{{
						ProductID: productIDs[rng.Intn(len(productIDs))],
						Quantity:  1 + rng.Intn(3),
					}}
					start := time.Now()
					_, err := pc.PlaceOrderIdempotent(ctx, userID, items, persistence.NewOrderKey())
					if err != nil {
						errs.Add(1)
						continue
					}
					local.Record(time.Since(start).Nanoseconds())
					checkouts.Add(1)
					acked.Add(1)
				} else {
					var err error
					if rng.Intn(4) == 0 {
						_, err = pc.Orders(ctx, userIDs[rng.Intn(len(userIDs))])
					} else {
						cat := cats[rng.Intn(len(cats))]
						_, err = pc.Products(ctx, cat.ID, rng.Intn(spec.ProductsPerCategory), 8)
					}
					if err != nil {
						errs.Add(1)
						continue
					}
					browses.Add(1)
				}
			}
			mu.Lock()
			checkoutLat.Merge(&local)
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	// Every acked checkout must be committed exactly once: flush the
	// pipelines, then compare stored growth with distinct acked keys.
	cluster.Flush()
	stored := int64(cluster.NumOrders()) - seeded

	snap := checkoutLat.Snapshot()
	return WriteRun{
		Shards:         shards,
		CheckoutRPS:    float64(checkouts.Load()) / elapsed.Seconds(),
		BrowseRPS:      float64(browses.Load()) / elapsed.Seconds(),
		CheckoutP50Ms:  float64(snap.P50) / 1e6,
		CheckoutP99Ms:  float64(snap.P99) / 1e6,
		Checkouts:      checkouts.Load(),
		Browses:        browses.Load(),
		Errors:         errs.Load(),
		AckedCheckouts: acked.Load(),
		StoredOrders:   stored,
		DurationSec:    elapsed.Seconds(),
	}, nil
}

// writeSpeedupFloor is the minimum 4-vs-1-shard checkout throughput
// ratio; writeP99Ceiling bounds how much checkout p99 at 4 shards may
// exceed 1 shard's (sharding must hold the tail, with slack for timer
// noise on loaded CI hosts).
const (
	writeSpeedupFloor = 1.8
	writeP99Ceiling   = 1.10
)

// GateWrite validates a write-mix report: the scaling floor, the tail
// bound, and exact write correctness in every run.
func GateWrite(rep WriteReport) []string {
	var violations []string
	for _, want := range writeMixShards {
		if findRun(rep.Runs, want) == nil {
			violations = append(violations, fmt.Sprintf("write: missing %d-shard run", want))
		}
	}
	for _, run := range rep.Runs {
		if run.Errors > 0 {
			violations = append(violations, fmt.Sprintf(
				"write %d-shard: %d errors, want 0", run.Shards, run.Errors))
		}
		if run.StoredOrders != run.AckedCheckouts {
			violations = append(violations, fmt.Sprintf(
				"write %d-shard: stored %d orders but acked %d checkouts (dup or loss)",
				run.Shards, run.StoredOrders, run.AckedCheckouts))
		}
		if run.Checkouts == 0 {
			violations = append(violations, fmt.Sprintf(
				"write %d-shard: no checkouts completed", run.Shards))
		}
	}
	if rep.SpeedupCheckout4v1 < writeSpeedupFloor {
		violations = append(violations, fmt.Sprintf(
			"write: 4-vs-1-shard checkout speedup %.2fx below %.2fx floor",
			rep.SpeedupCheckout4v1, writeSpeedupFloor))
	}
	if rep.P99Ratio4v1 > writeP99Ceiling {
		violations = append(violations, fmt.Sprintf(
			"write: checkout p99 at 4 shards is %.2fx of 1 shard's, above %.2fx ceiling",
			rep.P99Ratio4v1, writeP99Ceiling))
	}
	return violations
}

// WriteSummary renders the write-mix table for humans and the CI job
// summary.
func WriteSummary(rep WriteReport) string {
	var bld []byte
	appendf := func(format string, args ...any) { bld = append(bld, fmt.Sprintf(format, args...)...) }
	appendf("write mix %s (%s mode, %d workers, commit batch=%d flush=%s pending=%d)\n",
		rep.Mix, rep.Mode, rep.Workers, rep.Commit.MaxBatch, rep.Commit.FlushCost, rep.Commit.MaxPending)
	appendf("shards  checkout/s  browse/s  p50 ms  p99 ms  errors  stored==acked\n")
	for _, run := range rep.Runs {
		appendf("%-7d %10.0f %9.0f %7.0f %7.0f %7d  %d==%d\n",
			run.Shards, run.CheckoutRPS, run.BrowseRPS, run.CheckoutP50Ms, run.CheckoutP99Ms,
			run.Errors, run.StoredOrders, run.AckedCheckouts)
	}
	appendf("checkout speedup 4v1: %.2fx (floor %.1fx)   p99 ratio 4v1: %.2f (ceiling %.2f)\n",
		rep.SpeedupCheckout4v1, writeSpeedupFloor, rep.P99Ratio4v1, writeP99Ceiling)
	return string(bld)
}
