// Package perfbench is the machine-readable benchmark harness behind
// BENCH_PR4.json. It measures the PR's hot paths two ways:
//
//   - Micro: each optimized path runs head-to-head against a compiled-in
//     replica of the pre-optimization implementation (global-RWMutex
//     catalog store, encode-into-ResponseWriter WriteJSON, per-pixel
//     SetRGBA renderer) via testing.Benchmark. Because both sides run in
//     the same process on the same machine, the speedup RATIO is
//     machine-independent and is what the CI gate tracks.
//   - Stack: a short closed-loop run of the full six-service stack under
//     the browse profile, reporting throughput and latency percentiles.
//
// Allocations per op are deterministic and gated absolutely; wall-clock
// numbers are reported but never gated directly.
package perfbench

import (
	"context"
	"encoding/json"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/db"
	"repro/internal/httpkit"
	imagesvc "repro/internal/services/image"
	"repro/internal/loadgen"
	"repro/internal/teastore"
)

// Measurement is one benchmark side in ns/op, B/op, allocs/op.
type Measurement struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Comparison pairs a baseline replica with the optimized path.
type Comparison struct {
	Baseline  Measurement `json:"baseline"`
	Optimized Measurement `json:"optimized"`
	// Speedup is baseline ns/op over optimized ns/op (>1 is faster).
	Speedup float64 `json:"speedup"`
}

// StackResult summarizes one closed-loop run.
type StackResult struct {
	ThroughputRPS float64 `json:"throughput_rps"`
	P50Ms         float64 `json:"p50_ms"`
	P99Ms         float64 `json:"p99_ms"`
	Requests      int64   `json:"requests"`
	Errors        int64   `json:"errors"`
	Shed          int64   `json:"shed"`
	Users         int     `json:"users"`
	DurationSec   float64 `json:"duration_sec"`
}

// Report is the BENCH_PR4.json document.
type Report struct {
	SchemaVersion int    `json:"schema_version"`
	Mode          string `json:"mode"` // "quick" or "full"
	GoVersion     string `json:"go_version"`
	GOMAXPROCS    int    `json:"gomaxprocs"`
	// Micro keys: catalog_read, write_json, image_generate.
	Micro map[string]Comparison `json:"micro"`
	// StackBefore is the seed (pre-PR) closed-loop run, measured once at
	// the parent commit with the exact full-mode config below; it rides
	// along in the checked-in report as the before/after record.
	StackBefore *StackResult `json:"stack_before,omitempty"`
	Stack       *StackResult `json:"stack"`
}

// seedStackBaseline is the closed-loop result of the parent commit
// (global-RWMutex store, per-product strip lookups, unpooled encoders),
// captured with fullStackConfig on the reference container.
var seedStackBaseline = StackResult{
	ThroughputRPS: 41.52,
	P50Ms:         734.0,
	P99Ms:         2139.1,
	Requests:      499,
	Errors:        0,
	Users:         32,
	DurationSec:   12,
}

// Options configures a harness run.
type Options struct {
	// Quick shortens the closed-loop stack run for CI; micro benchmarks
	// are unaffected (ratios need full benchtime to be stable anyway).
	Quick bool
	// Log receives progress lines; nil silences them.
	Log func(format string, args ...any)
}

func (o Options) logf(format string, args ...any) {
	if o.Log != nil {
		o.Log(format, args...)
	}
}

// Run executes the full harness and assembles the report.
func Run(opts Options) (Report, error) {
	rep := Report{
		SchemaVersion: 1,
		Mode:          "full",
		GoVersion:     runtime.Version(),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		Micro:         map[string]Comparison{},
	}
	if opts.Quick {
		rep.Mode = "quick"
	}

	opts.logf("micro: catalog_read (32-goroutine page mix, snapshot vs global RWMutex)")
	rep.Micro["catalog_read"] = benchCatalogRead()
	opts.logf("micro: write_json (pooled body encode vs marshal-per-call)")
	rep.Micro["write_json"] = benchWriteJSON()
	opts.logf("micro: image_generate (direct-Pix pooled vs per-pixel SetRGBA)")
	rep.Micro["image_generate"] = benchImageGenerate()

	opts.logf("stack: closed-loop browse run (%s mode)", rep.Mode)
	stack, err := runStack(opts.Quick)
	if err != nil {
		return rep, fmt.Errorf("stack run: %w", err)
	}
	rep.Stack = &stack
	seed := seedStackBaseline
	rep.StackBefore = &seed
	return rep, nil
}

func toMeasurement(r testing.BenchmarkResult) Measurement {
	return Measurement{
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
	}
}

func compare(baseline, optimized testing.BenchmarkResult) Comparison {
	b, o := toMeasurement(baseline), toMeasurement(optimized)
	c := Comparison{Baseline: b, Optimized: o}
	if o.NsPerOp > 0 {
		c.Speedup = b.NsPerOp / o.NsPerOp
	}
	return c
}

// --- catalog read: optimized Store vs pre-PR global-RWMutex replica ---

// rwmutexStore replicates the seed catalog store: one global RWMutex,
// Categories sorts on every call, page reads copy under the read lock.
// It is the "before" side of the catalog_read comparison.
type rwmutexStore struct {
	mu                 sync.RWMutex
	categories         map[int64]*db.Category
	products           map[int64]*db.Product
	productsByCategory map[int64][]int64
}

func (s *rwmutexStore) Categories() []db.Category {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]db.Category, 0, len(s.categories))
	for _, c := range s.categories {
		out = append(out, *c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

func (s *rwmutexStore) Product(id int64) (db.Product, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	p, ok := s.products[id]
	if !ok {
		return db.Product{}, fmt.Errorf("not found: product %d", id)
	}
	return *p, nil
}

func (s *rwmutexStore) ProductsByCategory(categoryID int64, offset, limit int) ([]db.Product, int, error) {
	if limit <= 0 {
		limit = 20
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	ids := s.productsByCategory[categoryID]
	total := len(ids)
	if offset >= total {
		return []db.Product{}, total, nil
	}
	end := offset + limit
	if end > total {
		end = total
	}
	out := make([]db.Product, 0, end-offset)
	for _, id := range ids[offset:end] {
		out = append(out, *s.products[id])
	}
	return out, total, nil
}

const (
	benchCategories          = 6
	benchProductsPerCategory = 100
)

func benchCatalogRead() Comparison {
	// Identical catalogs on both sides.
	old := &rwmutexStore{
		categories:         map[int64]*db.Category{},
		products:           map[int64]*db.Product{},
		productsByCategory: map[int64][]int64{},
	}
	store := db.NewStore()
	var productIDs []int64
	for c := 0; c < benchCategories; c++ {
		nc, err := store.AddCategory(db.Category{Name: fmt.Sprintf("cat-%d", c), Description: "d"})
		if err != nil {
			panic(err)
		}
		old.categories[nc.ID] = &db.Category{ID: nc.ID, Name: nc.Name, Description: nc.Description}
		for p := 0; p < benchProductsPerCategory; p++ {
			np, err := store.AddProduct(db.Product{CategoryID: nc.ID, Name: fmt.Sprintf("p-%d-%d", c, p), Description: "d", PriceCents: 100 + int64(p)})
			if err != nil {
				panic(err)
			}
			old.products[np.ID] = &db.Product{ID: np.ID, CategoryID: nc.ID, Name: np.Name, Description: np.Description, PriceCents: np.PriceCents}
			old.productsByCategory[nc.ID] = append(old.productsByCategory[nc.ID], np.ID)
			productIDs = append(productIDs, np.ID)
		}
	}

	// The per-page read mix WebUI generates: one category listing, one
	// product page, two single-product lookups. 32 goroutines contend,
	// matching the scale-up study's concurrency band.
	mix := func(b *testing.B, categoriesFn func() []db.Category, pageFn func(int64, int, int) ([]db.Product, int, error), productFn func(int64) (db.Product, error)) {
		b.ReportAllocs()
		b.SetParallelism(32)
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				i++
				cats := categoriesFn()
				cat := cats[i%len(cats)].ID
				page, _, err := pageFn(cat, (i*8)%benchProductsPerCategory, 8)
				if err != nil || len(page) == 0 {
					b.Error("bad page")
					return
				}
				for k := 0; k < 2; k++ {
					pid := productIDs[(i*7+k*13)%len(productIDs)]
					if _, err := productFn(pid); err != nil {
						b.Error(err)
						return
					}
				}
			}
		})
	}
	baseline := testing.Benchmark(func(b *testing.B) {
		mix(b, old.Categories, old.ProductsByCategory, old.Product)
	})
	optimized := testing.Benchmark(func(b *testing.B) {
		mix(b, store.Categories, store.ProductsByCategory, store.Product)
	})
	return compare(baseline, optimized)
}

// --- WriteJSON: pooled single-encode vs the seed implementation ---

// benchWriteJSON measures the JSON body-encode path both WriteJSON and
// the client's doJSON sit on. The seed marshalled every request and
// response into a fresh []byte (json.Marshal copies its internal buffer
// out); the optimized path encodes into a pooled buffer and recycles it,
// so steady-state encodes allocate nothing and copy nothing extra. A
// representative persistence payload — one 20-product page — is used on
// both sides.
func benchWriteJSON() Comparison {
	type pageResp struct {
		Products []db.Product `json:"products"`
		Total    int          `json:"total"`
	}
	products := make([]db.Product, 20)
	for i := range products {
		products[i] = db.Product{
			ID: int64(i + 1), CategoryID: 3,
			Name:        fmt.Sprintf("Earl Grey Imperial %02d", i),
			Description: "A bright, citrus-forward black tea blend.",
			PriceCents:  1295,
		}
	}
	payload := pageResp{products, 200}

	baseline := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			data, err := json.Marshal(&payload)
			if err != nil || len(data) == 0 {
				b.Fatal(err)
			}
		}
	})
	optimized := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			jb, err := httpkit.EncodeJSON(&payload)
			if err != nil || len(jb.Bytes()) == 0 {
				b.Fatal(err)
			}
			jb.Release()
		}
	})
	return compare(baseline, optimized)
}

// --- image generation: direct-Pix pooled vs per-pixel reference ---

func benchImageGenerate() Comparison {
	baseline := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := imagesvc.RenderReference(int64(i%50), 125); err != nil {
				b.Fatal(err)
			}
		}
	})
	optimized := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := imagesvc.Render(int64(i%50), 125); err != nil {
				b.Fatal(err)
			}
		}
	})
	return compare(baseline, optimized)
}

// --- closed-loop stack run ---

func runStack(quick bool) (StackResult, error) {
	users, warmup, duration := 32, 3*time.Second, 12*time.Second
	if quick {
		users, warmup, duration = 16, 1*time.Second, 4*time.Second
	}
	st, err := teastore.Start(teastore.Config{})
	if err != nil {
		return StackResult{}, err
	}
	defer st.Shutdown(context.Background())
	res, err := loadgen.Run(context.Background(), loadgen.Config{
		WebUIURL:       st.WebUIURL,
		PersistenceURL: st.PersistenceURL,
		Users:          users,
		Warmup:         warmup,
		Duration:       duration,
		ThinkScale:     0.02,
		Seed:           42,
	})
	if err != nil {
		return StackResult{}, err
	}
	return StackResult{
		ThroughputRPS: res.Throughput,
		P50Ms:         float64(res.Latency.P50) / 1e6,
		P99Ms:         float64(res.Latency.P99) / 1e6,
		Requests:      res.Requests,
		Errors:        res.Errors,
		Shed:          res.Shed,
		Users:         users,
		DurationSec:   duration.Seconds(),
	}, nil
}

// --- regression gate ---

// gateTolerance is how much a tracked metric may regress vs the
// checked-in baseline before the gate fails the build.
const gateTolerance = 0.15

// Gate compares a fresh report against the checked-in one and returns
// the list of violations (empty means the gate passes). Tracked metrics
// are machine-portable: per-path speedup ratios (both sides of a ratio
// run on the same host) and allocs/op (deterministic), plus a hard
// zero-error requirement on the closed-loop run. Wall-clock stack
// throughput is reported, not gated — CI hosts differ too much for an
// absolute rps floor to mean anything.
func Gate(baseline, current Report) []string {
	var violations []string
	for name, base := range baseline.Micro {
		cur, ok := current.Micro[name]
		if !ok {
			violations = append(violations, fmt.Sprintf("%s: missing from current report", name))
			continue
		}
		if floor := base.Speedup * (1 - gateTolerance); cur.Speedup < floor {
			violations = append(violations, fmt.Sprintf(
				"%s: speedup %.2fx fell below %.2fx (baseline %.2fx - %d%% tolerance)",
				name, cur.Speedup, floor, base.Speedup, int(gateTolerance*100)))
		}
		// +1 absolute slack keeps zero-alloc paths gateable without
		// failing on a single incidental allocation.
		if ceil := int64(float64(base.Optimized.AllocsPerOp)*(1+gateTolerance)) + 1; cur.Optimized.AllocsPerOp > ceil {
			violations = append(violations, fmt.Sprintf(
				"%s: allocs/op %d exceeds ceiling %d (baseline %d)",
				name, cur.Optimized.AllocsPerOp, ceil, base.Optimized.AllocsPerOp))
		}
	}
	if current.Stack == nil {
		violations = append(violations, "stack: missing from current report")
	} else if current.Stack.Errors > 0 {
		violations = append(violations, fmt.Sprintf("stack: %d errors in closed-loop run, want 0", current.Stack.Errors))
	}
	return violations
}

// Summary renders a benchstat-style before/after table for humans (and
// the CI job summary).
func Summary(rep Report) string {
	var bld []byte
	appendf := func(format string, args ...any) { bld = append(bld, fmt.Sprintf(format, args...)...) }
	appendf("path              baseline         optimized        speedup  allocs (base→opt)\n")
	for _, name := range []string{"catalog_read", "write_json", "image_generate"} {
		c, ok := rep.Micro[name]
		if !ok {
			continue
		}
		appendf("%-17s %-16s %-16s %6.2fx  %d → %d\n",
			name, fmtNs(c.Baseline.NsPerOp), fmtNs(c.Optimized.NsPerOp),
			c.Speedup, c.Baseline.AllocsPerOp, c.Optimized.AllocsPerOp)
	}
	if rep.StackBefore != nil && rep.Stack != nil {
		appendf("stack (closed loop, %s mode): %.1f rps p50=%.0fms p99=%.0fms errors=%d\n",
			rep.Mode, rep.Stack.ThroughputRPS, rep.Stack.P50Ms, rep.Stack.P99Ms, rep.Stack.Errors)
		appendf("stack seed baseline (full mode): %.1f rps p50=%.0fms p99=%.0fms\n",
			rep.StackBefore.ThroughputRPS, rep.StackBefore.P50Ms, rep.StackBefore.P99Ms)
	}
	return string(bld)
}

func fmtNs(ns float64) string {
	switch {
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms/op", ns/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.1fµs/op", ns/1e3)
	default:
		return fmt.Sprintf("%.0fns/op", ns)
	}
}
