package scalectl

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestScrapeBlindHoldRaceHammer hammers the reconciler's scrape-blind
// hold path: a single replica flaps its /metrics.json endpoint up and
// down while the reconcile loop ticks at full speed and concurrent
// readers pull Status and Gauges. The reconciler is configured at its
// most trigger-happy (one stable tick fires a scale in either
// direction), so any tick that fabricates a score from missing data
// would scale; the invariant is that metrics disappearing never moves
// the replica count. Run under -race this also exercises every lock
// around serviceState, prev-sample maps, and the decision record.
func TestScrapeBlindHoldRaceHammer(t *testing.T) {
	target := newFakeTarget(t)
	inst := target.add("image")

	c, err := New(target, Config{
		Services:        map[string]Bounds{"image": {Min: 1, Max: 3}},
		Interval:        2 * time.Millisecond,
		ScrapeTimeout:   250 * time.Millisecond,
		UpStableTicks:   1,
		DownStableTicks: 1,
		DownCooldown:    time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	stop := c.Start()
	hammerCtx, cancelHammer := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		down := false
		for hammerCtx.Err() == nil {
			down = !down
			inst.setDown(down)
			time.Sleep(time.Millisecond)
		}
	}()
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for hammerCtx.Err() == nil {
				_ = c.Status()
				_ = c.Gauges()
				time.Sleep(200 * time.Microsecond)
			}
		}()
	}
	time.Sleep(300 * time.Millisecond)
	cancelHammer()
	wg.Wait()
	stop()

	target.mu.Lock()
	starts, downs := target.starts["image"], target.downs["image"]
	target.mu.Unlock()
	if starts != 0 || downs != 0 {
		t.Fatalf("reconciler flapped on scrape loss: %d starts, %d scale-downs (want 0, 0)", starts, downs)
	}

	// With the endpoint fully dark, a tick must record an explicit blind
	// hold, not a scored decision.
	inst.setDown(true)
	c.Tick(context.Background())
	status := c.Status()
	if len(status.Services) != 1 {
		t.Fatalf("status has %d services, want 1", len(status.Services))
	}
	st := status.Services[0]
	if st.LastDecision.Action != ActionHold {
		t.Fatalf("blind tick decided %q (%s), want hold", st.LastDecision.Action, st.LastDecision.Reason)
	}
	if !strings.Contains(st.LastDecision.Reason, "scrape failed") {
		t.Fatalf("blind hold reason %q does not name the scrape failure", st.LastDecision.Reason)
	}
	if st.Desired != 1 || st.Actual != 1 {
		t.Fatalf("blind hold moved replicas: desired %d actual %d, want 1/1", st.Desired, st.Actual)
	}
}
