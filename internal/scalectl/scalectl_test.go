package scalectl

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/httpkit"
	"repro/internal/metrics"
)

// fakeInstance is one scripted replica: a real HTTP server whose
// /metrics.json reflects whatever counters the test sets.
type fakeInstance struct {
	mu   sync.Mutex
	snap httpkit.MetricsSnapshot
	down bool
	srv  *httptest.Server
}

func newFakeInstance(t *testing.T, service string) *fakeInstance {
	t.Helper()
	f := &fakeInstance{}
	f.snap.Service = service
	f.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/metrics.json" {
			http.NotFound(w, r)
			return
		}
		f.mu.Lock()
		defer f.mu.Unlock()
		if f.down {
			http.Error(w, "metrics unavailable", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(f.snap)
	}))
	t.Cleanup(f.srv.Close)
	return f
}

// set replaces the instance's scripted counters.
func (f *fakeInstance) set(mutate func(*httpkit.MetricsSnapshot)) {
	f.mu.Lock()
	defer f.mu.Unlock()
	mutate(&f.snap)
}

// setDown toggles whether the replica serves /metrics.json at all,
// modelling an instance that stops answering scrapes mid-tick while its
// process stays registered.
func (f *fakeInstance) setDown(down bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.down = down
}

// fakeTarget is a scriptable Target whose replicas are fakeInstances.
type fakeTarget struct {
	t *testing.T

	mu        sync.Mutex
	replicas  map[string][]*fakeInstance
	startErr  error
	downErr   error
	starts    map[string]int
	downs     map[string]int
	downHook  func()
	startHook func(service string) // runs under the lock, after the append
}

func newFakeTarget(t *testing.T) *fakeTarget {
	return &fakeTarget{
		t:        t,
		replicas: map[string][]*fakeInstance{},
		starts:   map[string]int{},
		downs:    map[string]int{},
	}
}

func (f *fakeTarget) add(service string) *fakeInstance {
	inst := newFakeInstance(f.t, service)
	f.mu.Lock()
	defer f.mu.Unlock()
	f.replicas[service] = append(f.replicas[service], inst)
	return inst
}

func (f *fakeTarget) ServiceNames() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]string, 0, len(f.replicas))
	for name := range f.replicas {
		out = append(out, name)
	}
	return out
}

func (f *fakeTarget) ReplicaURLs(service string) []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]string, 0, len(f.replicas[service]))
	for _, inst := range f.replicas[service] {
		out = append(out, inst.srv.URL)
	}
	return out
}

func (f *fakeTarget) StartReplica(service string) error {
	f.mu.Lock()
	if err := f.startErr; err != nil {
		f.mu.Unlock()
		return err
	}
	f.starts[service]++
	hook := f.startHook
	f.mu.Unlock()
	f.add(service)
	if hook != nil {
		hook(service)
	}
	return nil
}

func (f *fakeTarget) ScaleDown(ctx context.Context, service string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.downErr != nil {
		return f.downErr
	}
	n := len(f.replicas[service])
	if n <= 1 {
		return fmt.Errorf("fake: refusing to stop the last %s replica", service)
	}
	f.replicas[service] = f.replicas[service][:n-1]
	f.downs[service]++
	if f.downHook != nil {
		f.downHook()
	}
	return nil
}

// saturate scripts an instance to look overloaded: deep in-flight queue.
func saturate(inst *fakeInstance) {
	inst.set(func(s *httpkit.MetricsSnapshot) {
		s.Requests += 500
		s.Resilience.Inflight = 64
	})
}

// idle scripts an instance to look bored.
func idle(inst *fakeInstance) {
	inst.set(func(s *httpkit.MetricsSnapshot) {
		s.Resilience.Inflight = 0
	})
}

func newTestController(t *testing.T, target Target, cfg Config) *Controller {
	t.Helper()
	ctl, err := New(target, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ctl
}

func TestNewRejectsBadConfig(t *testing.T) {
	ft := newFakeTarget(t)
	if _, err := New(ft, Config{}); err == nil {
		t.Fatal("empty Services accepted")
	}
	if _, err := New(ft, Config{Services: map[string]Bounds{"image": {Min: 0, Max: 2}}}); err == nil {
		t.Fatal("min 0 accepted")
	}
	if _, err := New(ft, Config{Services: map[string]Bounds{"image": {Min: 3, Max: 2}}}); err == nil {
		t.Fatal("max < min accepted")
	}
}

// TestScaleUpNeedsStableSaturation: one saturated tick must not add a
// replica; UpStableTicks consecutive ones must.
func TestScaleUpNeedsStableSaturation(t *testing.T) {
	ft := newFakeTarget(t)
	inst := ft.add("image")
	ctl := newTestController(t, ft, Config{
		Services:      map[string]Bounds{"image": {Min: 1, Max: 3}},
		UpStableTicks: 2,
		InflightHigh:  32,
	})
	ctx := context.Background()

	saturate(inst)
	ctl.Tick(ctx)
	if got := ft.starts["image"]; got != 0 {
		t.Fatalf("scaled up after one saturated tick (starts=%d); hysteresis broken", got)
	}
	st := ctl.Status().Services[0]
	if st.LastDecision.Action != ActionHold {
		t.Fatalf("decision after one tick = %+v, want hold", st.LastDecision)
	}

	saturate(inst)
	ctl.Tick(ctx)
	if got := ft.starts["image"]; got != 1 {
		t.Fatalf("starts after two saturated ticks = %d, want 1", got)
	}
	st = ctl.Status().Services[0]
	if st.LastDecision.Action != ActionScaleUp {
		t.Fatalf("decision = %+v, want scale-up", st.LastDecision)
	}
	if st.Desired != 2 || st.UpEvents != 1 {
		t.Fatalf("status after scale-up = %+v, want desired 2, upEvents 1", st)
	}
}

// TestScaleUpRespectsMax: a saturated service at its Max bound holds.
func TestScaleUpRespectsMax(t *testing.T) {
	ft := newFakeTarget(t)
	inst := ft.add("image")
	ctl := newTestController(t, ft, Config{
		Services:      map[string]Bounds{"image": {Min: 1, Max: 1}},
		UpStableTicks: 1,
	})
	for i := 0; i < 4; i++ {
		saturate(inst)
		ctl.Tick(context.Background())
	}
	if got := ft.starts["image"]; got != 0 {
		t.Fatalf("scaled past Max: starts=%d", got)
	}
}

// TestScaleDownNeedsCooldownAndStability: an idle service shrinks only
// after DownStableTicks idle ticks AND the cooldown since the last scale
// event has passed, and never below Min.
func TestScaleDownNeedsCooldownAndStability(t *testing.T) {
	ft := newFakeTarget(t)
	ft.add("image")
	ft.add("image")
	ctl := newTestController(t, ft, Config{
		Services:        map[string]Bounds{"image": {Min: 1, Max: 3}},
		DownStableTicks: 2,
		DownCooldown:    200 * time.Millisecond,
	})
	ctx := context.Background()

	// Seed lastScale so the cooldown is in effect.
	ctl.mu.Lock()
	ctl.state["image"].lastScale = time.Now()
	ctl.mu.Unlock()

	for i := 0; i < 4; i++ {
		ctl.Tick(ctx)
	}
	if got := ft.downs["image"]; got != 0 {
		t.Fatalf("scaled down inside cooldown: downs=%d", got)
	}

	time.Sleep(250 * time.Millisecond)
	ctl.Tick(ctx)
	if got := ft.downs["image"]; got != 1 {
		t.Fatalf("downs after cooldown elapsed = %d, want 1", got)
	}
	st := ctl.Status().Services[0]
	if st.LastDecision.Action != ActionScaleDown || st.DownEvents != 1 {
		t.Fatalf("status = %+v, want scale-down with downEvents 1", st)
	}

	// Now at Min: further idle ticks must hold.
	ctl.mu.Lock()
	ctl.state["image"].lastScale = time.Time{}
	ctl.mu.Unlock()
	for i := 0; i < 4; i++ {
		ctl.Tick(ctx)
	}
	if got := ft.downs["image"]; got != 1 {
		t.Fatalf("scaled below Min: downs=%d", got)
	}
}

// TestBelowMinScalesUpImmediately: a service under its Min bound is
// repaired without waiting for saturation streaks.
func TestBelowMinScalesUpImmediately(t *testing.T) {
	ft := newFakeTarget(t)
	ft.add("image")
	ctl := newTestController(t, ft, Config{
		Services:      map[string]Bounds{"image": {Min: 2, Max: 3}},
		UpStableTicks: 5,
	})
	ctl.Tick(context.Background())
	if got := ft.starts["image"]; got != 1 {
		t.Fatalf("starts = %d, want immediate repair to Min", got)
	}
}

// TestSaturationClearsAfterScaleUp: the windowed signals must decay once
// load stops — a lifetime p99 would keep the score pinned high forever.
func TestSaturationClearsAfterScaleUp(t *testing.T) {
	ft := newFakeTarget(t)
	inst := ft.add("image")
	ctl := newTestController(t, ft, Config{
		Services:      map[string]Bounds{"image": {Min: 1, Max: 3}},
		UpStableTicks: 2,
		P99High:       100 * time.Millisecond,
	})
	ctx := context.Background()

	// Slow traffic: every sample in a 400ms bucket.
	slow := []metrics.Bucket{{Low: 400e6, High: 500e6, Count: 1000}}
	inst.set(func(s *httpkit.MetricsSnapshot) {
		s.Requests = 1000
		s.OverallBuckets = slow
	})
	ctl.Tick(ctx) // baseline scrape, no deltas yet
	inst.set(func(s *httpkit.MetricsSnapshot) {
		s.Requests = 2000
		s.OverallBuckets = []metrics.Bucket{{Low: 400e6, High: 500e6, Count: 2000}}
	})
	ctl.Tick(ctx)
	if score := ctl.Status().Services[0].Score; score < 1 {
		t.Fatalf("score with windowed p99 400ms against P99High 100ms = %.2f, want ≥ 1", score)
	}

	// Traffic stops: counters freeze, so deltas go to zero and the score
	// must fall even though the lifetime histogram still says p99=400ms.
	ctl.Tick(ctx)
	if score := ctl.Status().Services[0].Score; score != 0 {
		t.Fatalf("score after traffic stopped = %.2f, want 0 (windowed signals must decay)", score)
	}
}

// TestShedFractionTriggersScaleUp: shedding is the crispest overload
// signal; a shed fraction past ShedHigh must saturate the score.
func TestShedFractionTriggersScaleUp(t *testing.T) {
	ft := newFakeTarget(t)
	inst := ft.add("image")
	ctl := newTestController(t, ft, Config{
		Services:      map[string]Bounds{"image": {Min: 1, Max: 2}},
		UpStableTicks: 1,
		ShedHigh:      0.05,
	})
	ctx := context.Background()
	ctl.Tick(ctx) // baseline
	inst.set(func(s *httpkit.MetricsSnapshot) {
		s.Requests += 100
		s.Resilience.Shed += 50
	})
	ctl.Tick(ctx)
	if got := ft.starts["image"]; got != 1 {
		t.Fatalf("starts = %d, want 1 after 50%% shed window", got)
	}
	reason := ctl.Status().Services[0].LastDecision.Reason
	if !strings.Contains(reason, "shed") {
		t.Fatalf("scale-up reason %q does not mention shedding", reason)
	}
}

// TestScrapeFailureHolds: when no replica answers /metrics.json the
// reconciler is blind and must hold rather than act on a zero score.
func TestScrapeFailureHolds(t *testing.T) {
	ft := newFakeTarget(t)
	inst := ft.add("image")
	ft.add("image")
	ctl := newTestController(t, ft, Config{
		Services:        map[string]Bounds{"image": {Min: 1, Max: 3}},
		DownStableTicks: 1,
		DownCooldown:    time.Nanosecond,
		ScrapeTimeout:   500 * time.Millisecond,
	})
	// Kill both fake servers' listeners (keep them in the replica list).
	ft.mu.Lock()
	for _, i := range ft.replicas["image"] {
		i.srv.Close()
	}
	ft.mu.Unlock()
	_ = inst

	for i := 0; i < 3; i++ {
		ctl.Tick(context.Background())
	}
	if got := ft.downs["image"]; got != 0 {
		t.Fatalf("scaled down on blind data: downs=%d", got)
	}
	st := ctl.Status().Services[0]
	if st.LastDecision.Action != ActionHold || !strings.Contains(st.LastDecision.Reason, "scrape") {
		t.Fatalf("decision = %+v, want hold on scrape failure", st.LastDecision)
	}
}

// TestStatusEndpointAndGauges: the HTTP surface mirrors Status().
func TestStatusEndpointAndGauges(t *testing.T) {
	ft := newFakeTarget(t)
	ft.add("image")
	ft.add("webui")
	ctl := newTestController(t, ft, Config{Services: map[string]Bounds{
		"image": {Min: 1, Max: 4},
		"webui": {Min: 1, Max: 2},
	}})
	ctl.Tick(context.Background())

	srv := httptest.NewServer(ctl.Mux())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var status Status
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	if len(status.Services) != 2 || status.Services[0].Service != "image" {
		t.Fatalf("status = %+v, want image then webui", status.Services)
	}
	if status.Ticks != 1 {
		t.Fatalf("ticks = %d, want 1", status.Ticks)
	}
	if a := status.Services[0].Actual; a != 1 {
		t.Fatalf("image actual = %d, want 1", a)
	}

	gauges := ctl.Gauges()
	want := map[string]bool{}
	for _, g := range gauges {
		want[g.Name+"/"+g.Labels["service"]] = true
	}
	for _, key := range []string{
		"teastore_replicas_desired/image", "teastore_replicas_actual/image",
		"teastore_replicas_desired/webui", "teastore_saturation_score/webui",
	} {
		if !want[key] {
			t.Fatalf("gauges missing %s: %+v", key, gauges)
		}
	}
}

// TestRunLoopScalesUnderScript: end-to-end through Run — a saturated
// service gains a replica, then sheds it after load stops and the
// cooldown passes. Also exercises concurrent Status/Gauges readers for
// the race detector.
func TestRunLoopScalesUnderScript(t *testing.T) {
	ft := newFakeTarget(t)
	inst := ft.add("image")
	keepSaturated := make(chan struct{})
	go func() {
		for {
			select {
			case <-keepSaturated:
				return
			case <-time.After(5 * time.Millisecond):
				saturate(inst)
			}
		}
	}()

	ctl := newTestController(t, ft, Config{
		Services:        map[string]Bounds{"image": {Min: 1, Max: 2}},
		Interval:        20 * time.Millisecond,
		UpStableTicks:   2,
		DownStableTicks: 2,
		DownCooldown:    100 * time.Millisecond,
	})
	stop := ctl.Start()
	defer stop()

	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		for i := 0; i < 50; i++ {
			_ = ctl.Status()
			_ = ctl.Gauges()
			time.Sleep(2 * time.Millisecond)
		}
	}()

	waitFor(t, 5*time.Second, func() bool { return len(ft.ReplicaURLs("image")) == 2 },
		"service never scaled to 2 under saturation")

	close(keepSaturated)
	idle(inst)
	ft.mu.Lock()
	for _, i := range ft.replicas["image"] {
		i.set(func(s *httpkit.MetricsSnapshot) { s.Resilience.Inflight = 0 })
	}
	ft.mu.Unlock()

	waitFor(t, 5*time.Second, func() bool { return len(ft.ReplicaURLs("image")) == 1 },
		"service never scaled back to 1 after load stopped")
	<-readerDone
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal(msg)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestWindowedP99 exercises the delta-percentile math directly.
func TestWindowedP99(t *testing.T) {
	prev := []map[int64]int64{{1000: 100, 5000: 10}}
	cur := []map[int64]int64{{1000: 200, 5000: 10}}
	// Window: 100 samples all in the 1000ns bucket.
	if got := windowedP99(prev, cur); got != 1000 {
		t.Fatalf("windowedP99 = %v, want 1000ns", got)
	}
	// No deltas → 0.
	if got := windowedP99(cur, cur); got != 0 {
		t.Fatalf("windowedP99 with frozen counters = %v, want 0", got)
	}
	// 99 fast + 1 slow in the window: p99 rank (ceil(0.99*100)=99) lands
	// in the fast bucket; 2 slow of 100 lands in the slow bucket.
	prev = []map[int64]int64{{1000: 0, 9000: 0}}
	cur = []map[int64]int64{{1000: 99, 9000: 1}}
	if got := windowedP99(prev, cur); got != 1000 {
		t.Fatalf("windowedP99(99 fast, 1 slow) = %v, want 1000ns", got)
	}
	cur = []map[int64]int64{{1000: 98, 9000: 2}}
	if got := windowedP99(prev, cur); got != 9000 {
		t.Fatalf("windowedP99(98 fast, 2 slow) = %v, want 9000ns", got)
	}
}
