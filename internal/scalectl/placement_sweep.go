package scalectl

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"time"

	"repro/internal/loadgen"
	"repro/internal/topology"
)

// MachineInfo records the machine model a report was measured against,
// plus the host facts that bound the measurement — schema consumers can
// tell a Small-preset CI run from a Rome box at a glance.
type MachineInfo struct {
	Name           string `json:"name"`
	Sockets        int    `json:"sockets"`
	NUMANodes      int    `json:"numaNodes"`
	CCXs           int    `json:"ccxs"`
	Cores          int    `json:"cores"`
	LogicalCPUs    int    `json:"logicalCpus"`
	ThreadsPerCore int    `json:"threadsPerCore"`
	// GOMAXPROCS and HostCPUs describe the process actually measuring:
	// the modelled machine bounds placement, the host bounds throughput.
	GOMAXPROCS int `json:"gomaxprocs"`
	HostCPUs   int `json:"hostCpus"`
}

// MachineInfoOf snapshots a topology model plus the current host.
func MachineInfoOf(m *topology.Machine) MachineInfo {
	return MachineInfo{
		Name:           m.Name(),
		Sockets:        m.NumSockets(),
		NUMANodes:      m.NumNUMA(),
		CCXs:           m.NumCCXs(),
		Cores:          m.NumCores(),
		LogicalCPUs:    m.NumCPUs(),
		ThreadsPerCore: m.NumCPUs() / m.NumCores(),
		GOMAXPROCS:     runtime.GOMAXPROCS(0),
		HostCPUs:       runtime.NumCPU(),
	}
}

// PolicyCurve is one placement policy's measured load curve at a fixed
// replica count.
type PolicyCurve struct {
	Policy string `json:"policy"`
	// Slots are the swept service's slot labels at measurement time and
	// Caps the admission caps those slots derived — the placement the
	// numbers were produced under, kept so curves are explainable.
	Slots []string     `json:"slots,omitempty"`
	Caps  []int        `json:"caps,omitempty"`
	Points []CurvePoint `json:"points"`
	// PeakRPS is the best throughput across the load levels; P99AtPeakMs
	// the tail latency at that load.
	PeakRPS     float64 `json:"peakRps"`
	P99AtPeakMs float64 `json:"p99AtPeakMs"`
}

// PlacementBlock is the placement comparison attached to a Report: the
// same stack, the same replica count, only the placement policy varied.
type PlacementBlock struct {
	Service    string        `json:"service"`
	Replicas   int           `json:"replicas"`
	SlotCores  int           `json:"slotCores"`
	CapPerCore int           `json:"capPerCore"`
	Policies   []PolicyCurve `json:"policies"`
	// BestPolicy is the policy with the highest peak throughput;
	// BestGainVsPacked its peak over packed's (1.22 ≙ the paper's +22 %),
	// and BestP99DeltaVsPacked the relative tail change at peak (−0.18 ≙
	// the paper's −18 %).
	BestPolicy           string  `json:"bestPolicy"`
	BestGainVsPacked     float64 `json:"bestGainVsPacked"`
	BestP99DeltaVsPacked float64 `json:"bestP99DeltaVsPacked"`
}

// curve finds a policy's curve.
func (b *PlacementBlock) curve(policy string) *PolicyCurve {
	for i := range b.Policies {
		if b.Policies[i].Policy == policy {
			return &b.Policies[i]
		}
	}
	return nil
}

// Finalize computes the best-policy headline numbers from the measured
// curves. Packed is the baseline and must be present.
func (b *PlacementBlock) Finalize() error {
	packed := b.curve("packed")
	if packed == nil || packed.PeakRPS <= 0 {
		return fmt.Errorf("scalectl: placement block lacks a usable packed baseline")
	}
	best := packed
	for i := range b.Policies {
		if b.Policies[i].PeakRPS > best.PeakRPS {
			best = &b.Policies[i]
		}
	}
	b.BestPolicy = best.Policy
	b.BestGainVsPacked = best.PeakRPS / packed.PeakRPS
	if packed.P99AtPeakMs > 0 {
		b.BestP99DeltaVsPacked = (best.P99AtPeakMs - packed.P99AtPeakMs) / packed.P99AtPeakMs
	}
	return nil
}

// Gate enforces the CI placement invariant: packed and ccx were both
// measured, and topology awareness did not lose throughput — the
// directional core of the paper's +22 % claim, robust to noisy runners.
func (b *PlacementBlock) Gate() error {
	packed, ccx := b.curve("packed"), b.curve("ccx")
	if packed == nil || ccx == nil {
		return fmt.Errorf("scalectl: placement gate needs both packed and ccx curves (have %d policies)", len(b.Policies))
	}
	if packed.PeakRPS <= 0 || ccx.PeakRPS <= 0 {
		return fmt.Errorf("scalectl: placement gate saw no throughput (packed %.1f rps, ccx %.1f rps)", packed.PeakRPS, ccx.PeakRPS)
	}
	if ccx.PeakRPS < packed.PeakRPS {
		return fmt.Errorf("scalectl: placement gate failed: ccx peak %.1f rps < packed peak %.1f rps", ccx.PeakRPS, packed.PeakRPS)
	}
	return nil
}

// capReporter is the optional target surface exposing per-replica
// admission caps (teastore.Stack implements it).
type capReporter interface {
	ReplicaCaps(service string) map[string]int
}

// MeasurePolicyCurve drives the closed-loop workload against an
// already-placed stack at its current replica count — one load level at
// a time — and returns the policy's curve. The target's placement is not
// changed here: the caller boots one stack per policy so every policy
// starts from identical cold state.
func MeasurePolicyCurve(ctx context.Context, target Target, policy, service string, cfg SweepConfig) (PolicyCurve, error) {
	cfg = cfg.withDefaults()
	if err := deriveURLs(&cfg, target); err != nil {
		return PolicyCurve{}, err
	}
	curve := PolicyCurve{Policy: policy}
	if st, ok := target.(SlotTarget); ok {
		for _, slot := range st.AllSlots() {
			if slot.Service == service {
				curve.Slots = append(curve.Slots, slot.Label())
			}
		}
	}
	if cr, ok := target.(capReporter); ok {
		caps := cr.ReplicaCaps(service)
		urls := make([]string, 0, len(caps))
		for url := range caps {
			urls = append(urls, url)
		}
		sort.Strings(urls)
		for _, url := range urls {
			curve.Caps = append(curve.Caps, caps[url])
		}
	}
	replicas := len(target.ReplicaURLs(service))
	// Give routing caches one settle window before measuring a fresh boot.
	settleFor(ctx, cfg.Settle)
	for _, load := range cfg.Loads {
		res, err := loadgen.Run(ctx, loadgen.Config{
			WebUIURL:       cfg.WebUIURL,
			PersistenceURL: cfg.PersistenceURL,
			RegistryURL:    cfg.RegistryURL,
			Profile:        cfg.Profile,
			Users:          load,
			Warmup:         cfg.Warmup,
			Duration:       cfg.StepDuration,
			ThinkScale:     cfg.ThinkScale,
			CatalogUsers:   cfg.CatalogUsers,
			Seed:           cfg.Seed + int64(load),
		})
		if err != nil {
			return curve, fmt.Errorf("scalectl: placement load run %s users=%d: %w", policy, load, err)
		}
		point := CurvePoint{
			Replicas:   replicas,
			Load:       load,
			Throughput: res.Throughput,
			P50Ms:      float64(res.Latency.P50) / 1e6,
			P99Ms:      float64(res.Latency.P99) / 1e6,
			Errors:     res.Errors,
			Shed:       res.Shed,
		}
		curve.Points = append(curve.Points, point)
		cfg.Log("placement %s users=%d: %.1f rps, p99 %.1fms, %d errors, %d shed",
			policy, load, res.Throughput, point.P99Ms, res.Errors, res.Shed)
		if point.Throughput > curve.PeakRPS {
			curve.PeakRPS = point.Throughput
			curve.P99AtPeakMs = point.P99Ms
		}
	}
	return curve, nil
}

// settleFor pauses for the configured settle window, honouring ctx.
func settleFor(ctx context.Context, d time.Duration) {
	if d <= 0 {
		return
	}
	select {
	case <-ctx.Done():
	case <-time.After(d):
	}
}
