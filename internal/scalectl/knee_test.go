package scalectl

import "testing"

func TestKneeOf(t *testing.T) {
	cases := []struct {
		name     string
		peak     []float64
		knee     int
		maxGain  float64
		gainFrac float64
	}{
		{"empty", nil, 1, 1, 0.1},
		{"single", []float64{100}, 1, 1, 0.1},
		{"linear scaling", []float64{100, 190, 270}, 3, 2.7, 0.1},
		{"flat after two", []float64{100, 180, 185}, 2, 1.85, 0.1},
		{"never pays", []float64{100, 105, 104}, 1, 1.05, 0.1},
		{"zero baseline", []float64{0, 50}, 1, 1, 0.1},
		{"dip then recovery below threshold", []float64{100, 90, 95}, 1, 1, 0.1},

		// Edge cases the cross-validation harness leans on: these shapes
		// appear when a service is simply not the bottleneck.
		{"flat curve", []float64{100, 100, 100}, 1, 1, 0.1},
		{"monotone decreasing", []float64{100, 80, 60}, 1, 1, 0.1},
		{"single replica point", []float64{240}, 1, 1, 0.1},
		// The knee test is >= gainFrac: a gain of exactly 10% still pays.
		{"exact 10% boundary pays", []float64{100, 110}, 2, 1.1, 0.1},
		{"just under 10% boundary does not", []float64{100, 109.999}, 1, 1.09999, 0.1},
		// Later-replica boundary: 200→220 is exactly +10% at r=3.
		{"exact boundary at third replica", []float64{100, 200, 220}, 3, 2.2, 0.1},
		{"negative baseline treated as unmeasurable", []float64{-5, 50}, 1, 1, 0.1},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			knee, gain := KneeOf(c.peak, c.gainFrac)
			if knee != c.knee {
				t.Errorf("knee = %d, want %d", knee, c.knee)
			}
			if diff := gain - c.maxGain; diff > 1e-9 || diff < -1e-9 {
				t.Errorf("maxGain = %v, want %v", gain, c.maxGain)
			}
		})
	}
}
