package scalectl

import "testing"

func TestKneeOf(t *testing.T) {
	cases := []struct {
		name     string
		peak     []float64
		knee     int
		maxGain  float64
		gainFrac float64
	}{
		{"empty", nil, 1, 1, 0.1},
		{"single", []float64{100}, 1, 1, 0.1},
		{"linear scaling", []float64{100, 190, 270}, 3, 2.7, 0.1},
		{"flat after two", []float64{100, 180, 185}, 2, 1.85, 0.1},
		{"never pays", []float64{100, 105, 104}, 1, 1.05, 0.1},
		{"zero baseline", []float64{0, 50}, 1, 1, 0.1},
		{"dip then recovery below threshold", []float64{100, 90, 95}, 1, 1, 0.1},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			knee, gain := kneeOf(c.peak, c.gainFrac)
			if knee != c.knee {
				t.Errorf("knee = %d, want %d", knee, c.knee)
			}
			if diff := gain - c.maxGain; diff > 1e-9 || diff < -1e-9 {
				t.Errorf("maxGain = %v, want %v", gain, c.maxGain)
			}
		})
	}
}
