package scalectl

import (
	"fmt"

	"repro/internal/placement"
)

// SlotTarget is an optional Target extension for topology-aware
// placement: a stack that binds each replica to a placement.Slot (CPU
// budget + affinity cell) and can boot a replica into a chosen slot.
// teastore.Stack implements it when configured with a placement policy;
// when the target lacks it — or Config.Placement is nil — the reconciler
// falls back to plain StartReplica and placement is a no-op.
type SlotTarget interface {
	// AllSlots lists every live replica's slot across all services —
	// the machine-wide view a policy scores contention against.
	AllSlots() []placement.Slot
	// SlotOf returns the slot a specific replica (by base URL) is bound
	// to, false when the replica is unknown or unplaced.
	SlotOf(service, url string) (placement.Slot, bool)
	// StartReplicaInSlot boots and registers one new replica of a
	// running service bound to the given slot.
	StartReplicaInSlot(service string, slot placement.Slot) error
}

// slotTarget resolves the placement extension: non-nil only when a
// policy is configured AND the target can bind slots.
func (c *Controller) slotTarget() (SlotTarget, bool) {
	if c.cfg.Placement == nil {
		return nil, false
	}
	st, ok := c.target.(SlotTarget)
	return st, ok
}

// startReplica boots one replica of name. With placement active the
// policy picks the least-contended slot given every live slot on the
// machine; placement decides *where* the replica lands, never *whether*
// it starts, so scaling decisions are identical with placement off.
func (c *Controller) startReplica(name string) error {
	st, ok := c.slotTarget()
	if !ok {
		return c.target.StartReplica(name)
	}
	slot, err := c.cfg.Placement.Assign(name, st.AllSlots())
	if err != nil {
		return fmt.Errorf("placement: %w", err)
	}
	return st.StartReplicaInSlot(name, slot)
}

// startReplacement boots the stand-in for a sick replica. With placement
// active it inherits the sick replica's slot — the replacement takes
// over the same cell (its caches and cell-mates) instead of the policy
// migrating the capacity elsewhere mid-incident.
func (c *Controller) startReplacement(name, sickURL string) error {
	st, ok := c.slotTarget()
	if !ok {
		return c.target.StartReplica(name)
	}
	if slot, found := st.SlotOf(name, sickURL); found {
		return st.StartReplicaInSlot(name, slot)
	}
	slot, err := c.cfg.Placement.Assign(name, st.AllSlots())
	if err != nil {
		return fmt.Errorf("placement: %w", err)
	}
	return st.StartReplicaInSlot(name, slot)
}

// slotLabels snapshots the live slot labels per controlled service for
// Status; nil when placement is inactive.
func (c *Controller) slotLabels() map[string][]string {
	st, ok := c.slotTarget()
	if !ok {
		return nil
	}
	out := map[string][]string{}
	for _, s := range st.AllSlots() {
		out[s.Service] = append(out[s.Service], s.Label())
	}
	return out
}
