package scalectl

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/httpkit"
	"repro/internal/loadgen"
	"repro/internal/placement"
	"repro/internal/workload"
)

// SweepConfig parameterizes a characterization sweep. Zero fields select
// the defaults noted per field.
type SweepConfig struct {
	// WebUIURL / PersistenceURL / RegistryURL locate the stack under test;
	// empty values are derived from the Target's replica listings.
	WebUIURL       string
	PersistenceURL string
	RegistryURL    string
	// Services to characterize in order (default: the paper's six —
	// webui, auth, persistence, recommender, image, registry). The
	// registry is measured at one replica only: it is the routing plane
	// and cannot be replicated.
	Services []string
	// MaxReplicas bounds each replicable service's sweep (3).
	MaxReplicas int
	// Loads are the closed-loop populations offered per replica count
	// ([4, 12, 24]).
	Loads []int
	// StepDuration is the measured window per (service, replicas, load)
	// cell (2s); Warmup precedes each cell (200ms).
	StepDuration time.Duration
	Warmup       time.Duration
	// Settle is the pause after each replica change, giving routing caches
	// one TTL to pick up the new topology (300ms).
	Settle time.Duration
	// ThinkScale compresses user think times (0.01).
	ThinkScale float64
	// Profile is the user-behaviour model driven against the stack
	// (workload.Browse() when nil). Cross-validation passes the same
	// profile to the simulator so both worlds see an identical mix.
	Profile *workload.Profile
	// CatalogUsers is how many demo accounts exist (db default).
	CatalogUsers int
	// KneeGainFrac is the marginal-throughput fraction below which adding
	// a replica no longer pays (0.10): the knee is the last replica count
	// whose addition still gained at least this much at the highest load.
	KneeGainFrac float64
	// Seed makes the load runs reproducible.
	Seed int64
	// Log receives progress lines; nil discards them.
	Log func(format string, args ...any)
}

func (c SweepConfig) withDefaults() SweepConfig {
	if len(c.Services) == 0 {
		c.Services = []string{"webui", "auth", "persistence", "recommender", "image", "registry"}
	}
	if c.MaxReplicas <= 0 {
		c.MaxReplicas = 3
	}
	if len(c.Loads) == 0 {
		c.Loads = []int{4, 12, 24}
	}
	if c.StepDuration <= 0 {
		c.StepDuration = 2 * time.Second
	}
	if c.Warmup <= 0 {
		c.Warmup = 200 * time.Millisecond
	}
	if c.Settle <= 0 {
		c.Settle = 300 * time.Millisecond
	}
	if c.ThinkScale <= 0 {
		c.ThinkScale = 0.01
	}
	if c.KneeGainFrac <= 0 {
		c.KneeGainFrac = 0.10
	}
	if c.Log == nil {
		c.Log = func(string, ...any) {}
	}
	return c
}

// CurvePoint is one measured cell of a service's scale-up surface.
type CurvePoint struct {
	Replicas   int     `json:"replicas"`
	Load       int     `json:"load"`
	Throughput float64 `json:"rps"`
	P50Ms      float64 `json:"p50Ms"`
	P99Ms      float64 `json:"p99Ms"`
	Errors     int64   `json:"errors"`
	Shed       int64   `json:"shed"`
}

// ServiceCurve is one service's measured scale-up behaviour.
type ServiceCurve struct {
	Service    string `json:"service"`
	Replicable bool   `json:"replicable"`
	// Knee is the replica count past which another replica gained less
	// than KneeGainFrac throughput at the highest load — the paper's
	// "where scaling this service stops paying".
	Knee int `json:"kneeReplicas"`
	// MaxGain is best-throughput / one-replica-throughput at the highest
	// load.
	MaxGain float64      `json:"maxGain"`
	Points  []CurvePoint `json:"points"`
}

// Report is the characterization output written to SCALEUP.json.
type Report struct {
	LoadLevels   []int          `json:"loads"`
	MaxReplicas  int            `json:"maxReplicas"`
	StepDuration string         `json:"stepDuration"`
	Services     []ServiceCurve `json:"services"`
	// MeasuredShares is each service's fraction of total busy time
	// (latency sum across all instances) during the sweep — the measured
	// analogue of the paper's per-service demand shares. WebUI's share is
	// inflated relative to CPU-demand shares: its wall-clock latency
	// includes waiting on every downstream call.
	MeasuredShares map[string]float64 `json:"measuredShares"`
	// ReferenceShares are the paper-derived demand shares the placement
	// heuristics use (placement.DefaultShares).
	ReferenceShares map[string]float64 `json:"referenceShares"`
	// MixCounts is how many requests of each type the sweep actually
	// completed, summed over every cell — the measured request mix that
	// calibration weighs per-request demands with. Absent in reports
	// written before cross-validation existed.
	MixCounts map[string]int64 `json:"mixCounts,omitempty"`
	// KneeGainFrac records the marginal-gain threshold the knees were
	// computed with, so re-derivations use the same definition.
	KneeGainFrac float64 `json:"kneeGainFrac,omitempty"`
	// Machine describes the topology model and measuring host when the
	// report was produced by a placement-aware run. Absent in reports
	// written before topology-aware placement existed.
	Machine *MachineInfo `json:"machine,omitempty"`
	// Placement is the packed-vs-topology-aware comparison (the paper's
	// +22 % / −18 % headline experiment). Absent when the placement sweep
	// was not run.
	Placement *PlacementBlock `json:"placement,omitempty"`
	Notes     []string        `json:"notes,omitempty"`
}

// WriteFile marshals the report as indented JSON.
func (r *Report) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadReport reads a characterization report back, rejecting unknown
// fields so consumers notice schema drift instead of silently dropping
// data.
func LoadReport(path string) (*Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	dec := json.NewDecoder(f)
	dec.DisallowUnknownFields()
	var r Report
	if err := dec.Decode(&r); err != nil {
		return nil, fmt.Errorf("scalectl: decoding %s: %w", path, err)
	}
	if len(r.Services) == 0 {
		return nil, fmt.Errorf("scalectl: %s has no service curves", path)
	}
	return &r, nil
}

// Characterize sweeps offered load × replica count for each service on a
// live stack — scale one service at a time, drive the full user workload,
// measure end-to-end throughput and latency — and reports per-service
// scale-up curves, knee replica counts, and measured demand shares. The
// Target must start with every swept service at one replica; the sweep
// restores that state between services.
func Characterize(ctx context.Context, target Target, cfg SweepConfig) (*Report, error) {
	cfg = cfg.withDefaults()
	if err := deriveURLs(&cfg, target); err != nil {
		return nil, err
	}
	c := &characterizer{
		target: target,
		cfg:    cfg,
		client: httpkit.NewClient(2*time.Second, httpkit.WithoutRetries(), httpkit.WithoutBreakers()),
	}
	return c.run(ctx)
}

// deriveURLs fills the stack URLs from the Target's replica listings.
func deriveURLs(cfg *SweepConfig, target Target) error {
	pick := func(dst *string, service string) error {
		if *dst != "" {
			return nil
		}
		urls := target.ReplicaURLs(service)
		if len(urls) == 0 {
			return fmt.Errorf("scalectl: target has no %s replica to derive a URL from", service)
		}
		*dst = urls[0]
		return nil
	}
	if err := pick(&cfg.WebUIURL, "webui"); err != nil {
		return err
	}
	if err := pick(&cfg.PersistenceURL, "persistence"); err != nil {
		return err
	}
	return pick(&cfg.RegistryURL, "registry")
}

type characterizer struct {
	target Target
	cfg    SweepConfig
	client *httpkit.Client
	// retiredBusy accumulates drained replicas' busy nanoseconds per
	// service: their counters disappear with them, but their work belongs
	// in the measured demand shares.
	retiredBusy map[string]float64
	// mixCounts accumulates completed requests by type across all cells.
	mixCounts map[string]int64
}

func (c *characterizer) run(ctx context.Context) (*Report, error) {
	c.retiredBusy = map[string]float64{}
	c.mixCounts = map[string]int64{}
	baseline := c.busyByInstance(ctx)

	report := &Report{
		LoadLevels:   c.cfg.Loads,
		MaxReplicas:  c.cfg.MaxReplicas,
		StepDuration: c.cfg.StepDuration.String(),
		KneeGainFrac: c.cfg.KneeGainFrac,
		Notes: []string{
			"throughput and latency are end-to-end through webui while only the named service's replica count varies",
			"registry is measured at one replica: it is the routing plane and cannot be replicated",
			"measuredShares are wall-clock busy-time fractions; webui's share includes downstream wait",
		},
	}

	for _, svc := range c.cfg.Services {
		curve, err := c.sweepService(ctx, svc)
		if err != nil {
			return nil, err
		}
		report.Services = append(report.Services, curve)
	}

	final := c.busyByInstance(ctx)
	report.MeasuredShares = c.shares(baseline, final)
	report.MixCounts = c.mixCounts
	report.ReferenceShares = map[string]float64{}
	for svc, share := range placement.DefaultShares() {
		report.ReferenceShares[svc.String()] = share
	}
	return report, nil
}

// sweepService measures one service's scale-up curve, restoring it to one
// replica afterwards.
func (c *characterizer) sweepService(ctx context.Context, svc string) (ServiceCurve, error) {
	replicable := svc != "registry"
	curve := ServiceCurve{Service: svc, Replicable: replicable, Knee: 1, MaxGain: 1}
	if len(c.target.ReplicaURLs(svc)) == 0 {
		return curve, fmt.Errorf("scalectl: target has no %s service", svc)
	}
	maxR := c.cfg.MaxReplicas
	if !replicable {
		maxR = 1
	}
	defer c.restoreToOne(ctx, svc)

	// Throughput at the highest load per replica count, for the knee.
	peak := make([]float64, 0, maxR)
	for r := 1; r <= maxR; r++ {
		if r > 1 {
			if err := c.target.StartReplica(svc); err != nil {
				return curve, fmt.Errorf("scalectl: scaling %s to %d replicas: %w", svc, r, err)
			}
			c.settle(ctx)
		}
		for _, load := range c.cfg.Loads {
			res, err := loadgen.Run(ctx, loadgen.Config{
				WebUIURL:       c.cfg.WebUIURL,
				PersistenceURL: c.cfg.PersistenceURL,
				RegistryURL:    c.cfg.RegistryURL,
				Profile:        c.cfg.Profile,
				Users:          load,
				Warmup:         c.cfg.Warmup,
				Duration:       c.cfg.StepDuration,
				ThinkScale:     c.cfg.ThinkScale,
				CatalogUsers:   c.cfg.CatalogUsers,
				Seed:           c.cfg.Seed + int64(load),
			})
			if err != nil {
				return curve, fmt.Errorf("scalectl: load run %s r=%d users=%d: %w", svc, r, load, err)
			}
			for req, snap := range res.PerRequest {
				c.mixCounts[req.String()] += snap.Count
			}
			point := CurvePoint{
				Replicas:   r,
				Load:       load,
				Throughput: res.Throughput,
				P50Ms:      float64(res.Latency.P50) / 1e6,
				P99Ms:      float64(res.Latency.P99) / 1e6,
				Errors:     res.Errors,
				Shed:       res.Shed,
			}
			curve.Points = append(curve.Points, point)
			c.cfg.Log("%s r=%d users=%d: %.1f rps, p99 %.1fms, %d errors, %d shed",
				svc, r, load, res.Throughput, point.P99Ms, res.Errors, res.Shed)
		}
		peak = append(peak, throughputAt(curve.Points, r, c.cfg.Loads[len(c.cfg.Loads)-1]))
	}

	curve.Knee, curve.MaxGain = KneeOf(peak, c.cfg.KneeGainFrac)
	return curve, nil
}

// throughputAt finds the measured throughput for one (replicas, load)
// cell.
func throughputAt(points []CurvePoint, replicas, load int) float64 {
	for _, p := range points {
		if p.Replicas == replicas && p.Load == load {
			return p.Throughput
		}
	}
	return 0
}

// KneeOf locates the scale-up knee in the highest-load throughput series
// (indexed by replicas-1): the last replica count whose addition still
// gained at least gainFrac, and the overall best-vs-one gain. The
// cross-validation harness applies the same definition to simulated and
// analytic curves so knees from different worlds are comparable.
func KneeOf(peak []float64, gainFrac float64) (knee int, maxGain float64) {
	knee, maxGain = 1, 1
	if len(peak) == 0 || peak[0] <= 0 {
		return knee, maxGain
	}
	for r := 1; r < len(peak); r++ {
		if peak[r-1] > 0 && (peak[r]-peak[r-1])/peak[r-1] >= gainFrac {
			knee = r + 1
		}
		if g := peak[r] / peak[0]; g > maxGain {
			maxGain = g
		}
	}
	return knee, maxGain
}

// restoreToOne drains a service back to a single replica, banking the
// drained replicas' busy time first.
func (c *characterizer) restoreToOne(ctx context.Context, svc string) {
	for len(c.target.ReplicaURLs(svc)) > 1 {
		urls := c.target.ReplicaURLs(svc)
		newest := urls[len(urls)-1]
		c.retiredBusy[svc] += c.busyOf(ctx, newest)
		if err := c.target.ScaleDown(ctx, svc); err != nil {
			c.cfg.Log("restoring %s to one replica: %v", svc, err)
			return
		}
	}
}

// settle waits for routing caches to notice a topology change.
func (c *characterizer) settle(ctx context.Context) {
	select {
	case <-ctx.Done():
	case <-time.After(c.cfg.Settle):
	}
}

// busyOf scrapes one instance's cumulative busy nanoseconds (mean
// latency × request count — the histogram's latency sum).
func (c *characterizer) busyOf(ctx context.Context, url string) float64 {
	var snap httpkit.MetricsSnapshot
	if err := c.client.GetJSON(ctx, url+"/metrics.json", &snap); err != nil {
		return 0
	}
	return snap.Overall.Mean * float64(snap.Overall.Count)
}

// busyByInstance scrapes every live instance's busy nanoseconds.
func (c *characterizer) busyByInstance(ctx context.Context) map[string]float64 {
	out := map[string]float64{}
	for _, svc := range c.target.ServiceNames() {
		for _, url := range c.target.ReplicaURLs(svc) {
			out[svc+"|"+url] = c.busyOf(ctx, url)
		}
	}
	return out
}

// shares turns baseline/final busy scrapes plus the retired-replica bank
// into per-service busy-time fractions.
func (c *characterizer) shares(baseline, final map[string]float64) map[string]float64 {
	busy := map[string]float64{}
	for key, busyNs := range final {
		svc, _, _ := strings.Cut(key, "|")
		busy[svc] += busyNs - baseline[key] // absent baseline → new instance → 0
	}
	for svc, banked := range c.retiredBusy {
		busy[svc] += banked
	}
	var total float64
	for _, b := range busy {
		total += b
	}
	if total <= 0 {
		return nil
	}
	out := make(map[string]float64, len(busy))
	for svc, b := range busy {
		if b < 0 {
			b = 0
		}
		out[svc] = b / total
	}
	return out
}
