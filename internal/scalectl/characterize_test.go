package scalectl_test

import (
	"context"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/db"
	"repro/internal/scalectl"
	"repro/internal/teastore"
)

// TestCharacterizeSweep runs a compressed scale-up sweep against a live
// stack and checks the report's shape: curves per service, sane knees,
// restored topology, and busy-time demand shares that carry the same
// robust structure as the placement reference shares (webui dominant,
// registry marginal, fractions summing to one).
func TestCharacterizeSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("characterization sweep is multi-second")
	}
	st, err := teastore.Start(teastore.Config{
		Catalog: db.GenerateSpec{
			Categories: 2, ProductsPerCategory: 6, Users: 4, SeedOrders: 10, Seed: 7,
		},
		BalancerCacheTTL: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		st.Shutdown(ctx)
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	rep, err := scalectl.Characterize(ctx, st, scalectl.SweepConfig{
		Services:     []string{"webui", "image", "registry"},
		MaxReplicas:  2,
		Loads:        []int{6},
		StepDuration: 400 * time.Millisecond,
		Warmup:       100 * time.Millisecond,
		Settle:       150 * time.Millisecond,
		ThinkScale:   0.01,
		Seed:         11,
		Log:          t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}

	if len(rep.Services) != 3 {
		t.Fatalf("got %d service curves, want 3", len(rep.Services))
	}
	for _, curve := range rep.Services {
		wantPoints := 2 // replicas 1..2 × one load
		if curve.Service == "registry" {
			wantPoints = 1
			if curve.Replicable {
				t.Errorf("registry reported replicable")
			}
			if curve.Knee != 1 {
				t.Errorf("registry knee = %d, want 1", curve.Knee)
			}
		} else if !curve.Replicable {
			t.Errorf("%s reported non-replicable", curve.Service)
		}
		if len(curve.Points) != wantPoints {
			t.Errorf("%s has %d points, want %d", curve.Service, len(curve.Points), wantPoints)
		}
		for _, p := range curve.Points {
			if p.Throughput <= 0 {
				t.Errorf("%s r=%d load=%d measured zero throughput", curve.Service, p.Replicas, p.Load)
			}
		}
		if curve.Knee < 1 || curve.Knee > 2 {
			t.Errorf("%s knee = %d, want within [1,2]", curve.Service, curve.Knee)
		}
	}

	// The sweep must leave the stack as it found it: one replica each.
	for _, svc := range []string{"webui", "image"} {
		if n := len(st.ReplicaURLs(svc)); n != 1 {
			t.Errorf("%s left at %d replicas after sweep, want 1", svc, n)
		}
	}

	// Measured demand shares: fractions over every live service, summing
	// to one, with webui's wall-clock share dominant (it fronts every
	// request) and the registry's marginal — the same ordering structure
	// as the paper-derived placement shares.
	if len(rep.MeasuredShares) == 0 {
		t.Fatal("no measured shares")
	}
	var sum float64
	for svc, share := range rep.MeasuredShares {
		if share < 0 || share > 1 {
			t.Errorf("share[%s] = %v outside [0,1]", svc, share)
		}
		sum += share
	}
	if math.Abs(sum-1) > 0.01 {
		t.Errorf("measured shares sum to %v, want ~1", sum)
	}
	webui := rep.MeasuredShares["webui"]
	for svc, share := range rep.MeasuredShares {
		if share > webui {
			t.Errorf("measured share[%s]=%v exceeds webui's %v", svc, share, webui)
		}
	}
	if reg := rep.MeasuredShares["registry"]; reg > 0.15 {
		t.Errorf("registry measured share %v, want marginal (≤0.15)", reg)
	}

	// Reference shares come from placement.DefaultShares and must show
	// the same structure the measured shares are compared against.
	if len(rep.ReferenceShares) != 6 {
		t.Fatalf("got %d reference shares, want 6", len(rep.ReferenceShares))
	}
	refWebui := rep.ReferenceShares["webui"]
	refReg := rep.ReferenceShares["registry"]
	for svc, share := range rep.ReferenceShares {
		if share > refWebui {
			t.Errorf("reference share[%s]=%v exceeds webui's %v", svc, share, refWebui)
		}
		if svc != "registry" && share < refReg {
			t.Errorf("reference share[%s]=%v below registry's %v", svc, share, refReg)
		}
	}

	// The report must round-trip through its SCALEUP.json serialization.
	path := filepath.Join(t.TempDir(), "SCALEUP.json")
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back scalectl.Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("SCALEUP.json does not parse: %v", err)
	}
	if len(back.Services) != len(rep.Services) {
		t.Errorf("round-trip lost service curves: %d vs %d", len(back.Services), len(rep.Services))
	}
}
