// Package scalectl is the scale-up control plane for the real TeaStore
// stack: a closed-loop reconciler that measures each service's saturation
// from its live metrics and drives the replica count toward demand, plus a
// characterizer (characterize.go) that sweeps offered load × replica count
// to measure each service's scale-up curve the way the paper does.
//
// The reconciler scrapes every instance's /metrics.json each tick,
// computes a per-service saturation score from four signals — in-flight
// requests, shed deltas, windowed p99 (from scrape-to-scrape histogram
// bucket deltas, not lifetime aggregates), and open circuit breakers
// pointed at the service — and reconciles the actual replica count toward
// the demand with hysteresis, per-service min/max bounds, and a
// scale-down cooldown. Scale-downs drain: the Target deregisters the
// replica, waits for its in-flight work, then closes it, so planned
// shrinking never fails a request.
//
// The package deliberately does not import the stack: it drives any
// Target, which teastore.Stack satisfies, so the reconciler and the
// characterizer are testable against fakes and reusable for remote
// control planes.
package scalectl

import (
	"context"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/httpkit"
	"repro/internal/metrics"
	"repro/internal/placement"
)

// Target is the surface the reconciler scales: a running stack that can
// list its live replicas and add or drain-remove one at runtime.
type Target interface {
	// ServiceNames lists every live service (controlled or not); the
	// reconciler scrapes them all so callers' breaker state against a
	// controlled service is visible.
	ServiceNames() []string
	// ReplicaURLs lists a service's live replica base URLs in boot order.
	ReplicaURLs(service string) []string
	// StartReplica boots and registers one new replica of a running
	// service.
	StartReplica(service string) error
	// ScaleDown drains and stops the newest replica of a service. It must
	// deregister before closing so no request fails during the shrink,
	// and refuse to remove the last replica.
	ScaleDown(ctx context.Context, service string) error
}

// Bounds is one service's replica range.
type Bounds struct {
	Min, Max int
}

// Config tunes the reconciler. Zero fields select the defaults noted per
// field.
type Config struct {
	// Services maps controlled service names to replica bounds. Required.
	Services map[string]Bounds
	// Interval is the scrape-and-decide period (500ms).
	Interval time.Duration
	// ScrapeTimeout bounds one tick's metric collection (2s).
	ScrapeTimeout time.Duration
	// DrainTimeout bounds one scale-down's graceful drain (10s).
	DrainTimeout time.Duration

	// UpThreshold is the saturation score at or above which a service is
	// considered saturated (1.0). The score normalizes each signal so that
	// 1.0 means "at the configured high-water mark".
	UpThreshold float64
	// DownThreshold is the score at or below which a service is considered
	// idle enough to shrink (0.25). The gap between the thresholds is the
	// hysteresis band where the reconciler holds.
	DownThreshold float64
	// UpStableTicks is how many consecutive saturated ticks trigger a
	// scale-up (2) — one noisy sample never adds a replica.
	UpStableTicks int
	// DownStableTicks is how many consecutive idle ticks arm a scale-down
	// (3).
	DownStableTicks int
	// DownCooldown is the minimum time after any scale event before a
	// scale-down fires (30s) — freshly added capacity gets a chance to
	// absorb the load before being taken away.
	DownCooldown time.Duration

	// ReplaceAfterTicks is how many consecutive unhealthy ticks — the
	// replica caller-ejected as an outlier or its windowed p99 standing
	// OutlierP99Factor above its peers' median — trigger a replacement
	// (default 4). Negative disables replacement entirely. Replacement
	// needs the Target to also implement ReplicaDrainer.
	ReplaceAfterTicks int
	// ReplaceCooldown is the minimum time between replacements per
	// service (default 15s) — one swap, then watch whether the pool
	// recovered before swapping again.
	ReplaceCooldown time.Duration
	// OutlierP99Factor is the windowed-p99 multiple of the peer median at
	// which a replica counts as unhealthy (default 3).
	OutlierP99Factor float64

	// InflightHigh is the per-replica mean in-flight count treated as
	// fully saturated (32).
	InflightHigh float64
	// P99High is the windowed p99 latency treated as fully saturated
	// (500ms).
	P99High time.Duration
	// ShedHigh is the shed fraction (sheds/requests per window) treated as
	// fully saturated (0.05).
	ShedHigh float64

	// Client performs the scrapes; nil builds one with breakers and
	// retries off (a failed scrape should be observed, not masked).
	Client *httpkit.Client

	// Placement, when set, makes scale-ups and replacements
	// topology-aware: new replicas go to the slot the policy picks
	// (least-contended cell), replacements inherit the dead replica's
	// slot. Requires the Target to implement SlotTarget; ignored
	// otherwise. Placement never changes *whether* the reconciler
	// scales — only where the replica lands.
	Placement placement.Policy
}

// withDefaults resolves zero fields.
func (c Config) withDefaults() Config {
	if c.Interval <= 0 {
		c.Interval = 500 * time.Millisecond
	}
	if c.ScrapeTimeout <= 0 {
		c.ScrapeTimeout = 2 * time.Second
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 10 * time.Second
	}
	if c.UpThreshold <= 0 {
		c.UpThreshold = 1.0
	}
	if c.DownThreshold <= 0 {
		c.DownThreshold = 0.25
	}
	if c.UpStableTicks <= 0 {
		c.UpStableTicks = 2
	}
	if c.DownStableTicks <= 0 {
		c.DownStableTicks = 3
	}
	if c.DownCooldown <= 0 {
		c.DownCooldown = 30 * time.Second
	}
	if c.ReplaceAfterTicks == 0 {
		c.ReplaceAfterTicks = 4
	}
	if c.ReplaceCooldown <= 0 {
		c.ReplaceCooldown = 15 * time.Second
	}
	if c.OutlierP99Factor <= 0 {
		c.OutlierP99Factor = 3
	}
	if c.InflightHigh <= 0 {
		c.InflightHigh = 32
	}
	if c.P99High <= 0 {
		c.P99High = 500 * time.Millisecond
	}
	if c.ShedHigh <= 0 {
		c.ShedHigh = 0.05
	}
	return c
}

// Decision is one reconcile verdict for a service.
type Decision struct {
	Action string    `json:"action"` // ActionScaleUp, ActionScaleDown, ActionHold
	Reason string    `json:"reason"`
	Time   time.Time `json:"time"`
}

// Reconciler actions.
const (
	ActionScaleUp   = "scale-up"
	ActionScaleDown = "scale-down"
	ActionReplace   = "replace"
	ActionHold      = "hold"
)

// ServiceStatus is one controlled service's reconciler view.
type ServiceStatus struct {
	Service      string   `json:"service"`
	Min          int      `json:"min"`
	Max          int      `json:"max"`
	Desired      int      `json:"desired"`
	Actual       int      `json:"actual"`
	Score        float64  `json:"score"`
	UpEvents     int64    `json:"upEvents"`
	DownEvents   int64    `json:"downEvents"`
	Replacements int64    `json:"replacements,omitempty"`
	Unhealthy    []string `json:"unhealthy,omitempty"`
	// Slots lists the live replicas' placement labels when the
	// controller runs with a placement policy; absent otherwise.
	Slots        []string `json:"slots,omitempty"`
	LastDecision Decision `json:"lastDecision"`
}

// Status is the controller's full state, served on GET /status.
type Status struct {
	Ticks    int64           `json:"ticks"`
	Services []ServiceStatus `json:"services"`
}

// sample is one instance's counters at the previous scrape, the baseline
// windowed signals are computed against.
type sample struct {
	requests int64
	shed     int64
	buckets  map[int64]int64 // bucket low bound → cumulative count
}

// serviceState is the reconciler's memory for one controlled service.
type serviceState struct {
	desired    int
	upStreak   int
	downStreak int
	lastScale  time.Time
	last       Decision
	score      float64
	actual     int
	upEvents   int64
	downEvents int64
	prev       map[string]sample // replica URL → previous scrape

	health          map[string]bool // replica URL → healthy last tick
	unhealthyStreak map[string]int  // replica URL → consecutive unhealthy ticks
	lastReplace     time.Time
	replacements    int64
}

// Controller runs the reconcile loop over a Target.
type Controller struct {
	target Target
	cfg    Config
	client *httpkit.Client

	mu    sync.Mutex
	ticks int64
	state map[string]*serviceState
}

// New builds a controller; it does not start reconciling until Run (or
// Start) is called. Tick is exported for deterministic tests.
func New(target Target, cfg Config) (*Controller, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Services) == 0 {
		return nil, fmt.Errorf("scalectl: Config.Services is empty — nothing to control")
	}
	for name, b := range cfg.Services {
		if b.Min < 1 || b.Max < b.Min {
			return nil, fmt.Errorf("scalectl: bad bounds %d..%d for %s (need 1 ≤ min ≤ max)", b.Min, b.Max, name)
		}
	}
	client := cfg.Client
	if client == nil {
		client = httpkit.NewClient(cfg.ScrapeTimeout, httpkit.WithoutRetries(), httpkit.WithoutBreakers())
	}
	c := &Controller{target: target, cfg: cfg, client: client, state: map[string]*serviceState{}}
	for name := range cfg.Services {
		c.state[name] = &serviceState{
			prev:            map[string]sample{},
			health:          map[string]bool{},
			unhealthyStreak: map[string]int{},
		}
	}
	return c, nil
}

// Run reconciles every Interval until the context ends.
func (c *Controller) Run(ctx context.Context) {
	t := time.NewTicker(c.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			c.Tick(ctx)
		}
	}
}

// Start launches Run in a goroutine; the returned stop blocks until the
// loop (including any in-progress drain) has exited.
func (c *Controller) Start() (stop func()) {
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		c.Run(ctx)
	}()
	return func() {
		cancel()
		<-done
	}
}

// Tick performs one reconcile pass: scrape everything, then score and
// (maybe) scale each controlled service.
func (c *Controller) Tick(ctx context.Context) {
	scrapeCtx, cancel := context.WithTimeout(ctx, c.cfg.ScrapeTimeout)
	snaps, openDest := c.scrapeAll(scrapeCtx)
	cancel()
	ejected := ejectedByCallers(snaps)

	names := make([]string, 0, len(c.cfg.Services))
	for name := range c.cfg.Services {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		c.reconcileService(ctx, name, c.cfg.Services[name], snaps[name], openDest, ejected[name])
	}
	c.mu.Lock()
	c.ticks++
	c.mu.Unlock()
}

// instanceSnap pairs one replica's URL with its scraped metrics.
type instanceSnap struct {
	url  string
	snap httpkit.MetricsSnapshot
	ok   bool
}

// scrapeAll collects every live instance's /metrics.json and the set of
// replica addresses some caller's breaker currently holds non-closed.
func (c *Controller) scrapeAll(ctx context.Context) (map[string][]instanceSnap, map[string]bool) {
	snaps := map[string][]instanceSnap{}
	openDest := map[string]bool{}
	for _, svc := range c.target.ServiceNames() {
		for _, url := range c.target.ReplicaURLs(svc) {
			is := instanceSnap{url: url}
			if err := c.client.GetJSON(ctx, url+"/metrics.json", &is.snap); err == nil {
				is.ok = true
				for dest, bs := range is.snap.Resilience.Breakers {
					if bs.State != "closed" {
						openDest[dest] = true
					}
				}
			}
			snaps[svc] = append(snaps[svc], is)
		}
	}
	return snaps, openDest
}

// reconcileService scores one service and applies at most one replica
// step, honouring bounds, hysteresis, and the scale-down cooldown.
// Health-driven replacement is checked first: a persistently gray
// replica is a correctness problem, not a capacity one, so it beats the
// saturation logic to the punch.
func (c *Controller) reconcileService(ctx context.Context, name string, b Bounds, snaps []instanceSnap, openDest, ejected map[string]bool) {
	c.mu.Lock()
	st := c.state[name]
	c.mu.Unlock()

	actual := len(snaps)
	score, scraped, signals, windows := c.score(st, name, snaps, openDest)

	c.mu.Lock()
	st.actual = actual
	st.score = score
	c.mu.Unlock()

	now := time.Now()
	replaceURL, replaceWhy := c.checkHealth(st, windows, ejected, now)
	switch {
	case actual == 0:
		c.record(st, ActionHold, "no live replicas visible", now, clamp(actual, b))
	case actual < b.Min:
		c.scaleUp(st, name, fmt.Sprintf("%d replicas below min %d", actual, b.Min), now, b)
	case actual > b.Max:
		c.scaleDown(ctx, st, name, fmt.Sprintf("%d replicas above max %d", actual, b.Max), now, b)
	case !scraped:
		// No replica answered: the score is blind, so hold rather than
		// flap on missing data.
		c.record(st, ActionHold, "metrics scrape failed for every replica", now, clamp(actual, b))
	case replaceURL != "" && actual >= 2:
		// Replacing needs a peer pool: with one replica there is no
		// baseline to call it unhealthy against, and caller ejection
		// keeps at least one replica admissible anyway.
		c.replaceReplica(ctx, st, name, replaceURL, replaceWhy, now, b)
	default:
		c.mu.Lock()
		switch {
		case score >= c.cfg.UpThreshold:
			st.upStreak++
			st.downStreak = 0
		case score <= c.cfg.DownThreshold:
			st.downStreak++
			st.upStreak = 0
		default:
			st.upStreak, st.downStreak = 0, 0
		}
		up := st.upStreak >= c.cfg.UpStableTicks && actual < b.Max
		down := st.downStreak >= c.cfg.DownStableTicks && actual > b.Min &&
			now.Sub(st.lastScale) >= c.cfg.DownCooldown
		c.mu.Unlock()
		switch {
		case up:
			c.scaleUp(st, name, fmt.Sprintf("saturated: score %.2f ≥ %.2f for %d ticks (%s)",
				score, c.cfg.UpThreshold, c.cfg.UpStableTicks, signals), now, b)
		case down:
			c.scaleDown(ctx, st, name, fmt.Sprintf("idle: score %.2f ≤ %.2f for %d ticks past cooldown",
				score, c.cfg.DownThreshold, c.cfg.DownStableTicks), now, b)
		default:
			c.record(st, ActionHold, fmt.Sprintf("score %.2f (%s)", score, signals), now, clamp(actual, b))
		}
	}
}

// score computes the saturation score: the max of the four normalized
// signals, so any single saturated dimension is enough to scale. scraped
// is false when no replica answered. The returned signals string makes
// decisions explainable in /status and the breakdown tables, and the
// per-replica windows feed the health judgement.
func (c *Controller) score(st *serviceState, name string, snaps []instanceSnap, openDest map[string]bool) (score float64, scraped bool, signals string, windows []replicaWindow) {
	var inflight int64
	var dReq, dShed int64
	var p99w time.Duration
	breakerOpen := false
	prev := map[string]sample{}
	var windowPrev, windowCur []map[int64]int64
	n := 0
	for _, is := range snaps {
		if !is.ok {
			continue
		}
		n++
		inflight += is.snap.Resilience.Inflight
		addr := hostOf(is.url)
		if openDest[addr] {
			breakerOpen = true
		}
		cur := sample{
			requests: is.snap.Requests,
			shed:     is.snap.Resilience.Shed,
			buckets:  bucketMap(is.snap.OverallBuckets),
		}
		c.mu.Lock()
		old, seen := st.prev[is.url]
		c.mu.Unlock()
		if seen {
			dReq += max64(0, cur.requests-old.requests)
			dShed += max64(0, cur.shed-old.shed)
			windowPrev = append(windowPrev, old.buckets)
			windowCur = append(windowCur, cur.buckets)
			windows = append(windows, replicaWindow{
				url:  is.url,
				dReq: max64(0, cur.requests-old.requests),
				p99:  windowedP99([]map[int64]int64{old.buckets}, []map[int64]int64{cur.buckets}),
			})
		}
		prev[is.url] = cur
	}
	c.mu.Lock()
	st.prev = prev
	c.mu.Unlock()
	if n == 0 {
		return 0, false, "no data", nil
	}

	inflightAvg := float64(inflight) / float64(n)
	shedFrac := 0.0
	if dReq > 0 {
		shedFrac = float64(dShed) / float64(dReq)
	}
	p99w = windowedP99(windowPrev, windowCur)

	score = maxf(
		inflightAvg/c.cfg.InflightHigh,
		shedFrac/c.cfg.ShedHigh,
		float64(p99w)/float64(c.cfg.P99High),
	)
	if breakerOpen {
		score = maxf(score, 1)
	}
	signals = fmt.Sprintf("inflight %.1f/replica, shed %.1f%%, p99 %.0fms, breakers open=%v",
		inflightAvg, 100*shedFrac, float64(p99w)/1e6, breakerOpen)
	return score, true, signals, windows
}

// scaleUp asks the target for one more replica (placement-aware when
// configured) and records the outcome.
func (c *Controller) scaleUp(st *serviceState, name, reason string, now time.Time, b Bounds) {
	if err := c.startReplica(name); err != nil {
		c.record(st, ActionHold, fmt.Sprintf("scale-up wanted (%s) but failed: %v", reason, err), now, clamp(st.actual, b))
		return
	}
	c.mu.Lock()
	st.upEvents++
	st.lastScale = now
	st.upStreak, st.downStreak = 0, 0
	c.mu.Unlock()
	c.record(st, ActionScaleUp, reason, now, clamp(st.actual+1, b))
}

// scaleDown asks the target to drain one replica and records the outcome.
// The drain runs inside this tick — serializing scale operations keeps
// the loop from racing itself.
func (c *Controller) scaleDown(ctx context.Context, st *serviceState, name, reason string, now time.Time, b Bounds) {
	drainCtx, cancel := context.WithTimeout(ctx, c.cfg.DrainTimeout)
	defer cancel()
	if err := c.target.ScaleDown(drainCtx, name); err != nil {
		c.record(st, ActionHold, fmt.Sprintf("scale-down wanted (%s) but failed: %v", reason, err), now, clamp(st.actual, b))
		return
	}
	c.mu.Lock()
	st.downEvents++
	st.lastScale = now
	st.upStreak, st.downStreak = 0, 0
	c.mu.Unlock()
	c.record(st, ActionScaleDown, reason, now, clamp(st.actual-1, b))
}

// record stores a decision and the desired replica count it implies.
func (c *Controller) record(st *serviceState, action, reason string, now time.Time, desired int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	st.last = Decision{Action: action, Reason: reason, Time: now}
	st.desired = desired
}

// Status snapshots the controller's per-service state, sorted by name.
func (c *Controller) Status() Status {
	slots := c.slotLabels() // queries the target; must not hold c.mu
	c.mu.Lock()
	defer c.mu.Unlock()
	out := Status{Ticks: c.ticks}
	for name, st := range c.state {
		b := c.cfg.Services[name]
		out.Services = append(out.Services, ServiceStatus{
			Service: name, Min: b.Min, Max: b.Max,
			Desired: st.desired, Actual: st.actual, Score: st.score,
			UpEvents: st.upEvents, DownEvents: st.downEvents,
			Replacements: st.replacements, Unhealthy: unhealthyList(st),
			Slots:        slots[name],
			LastDecision: st.last,
		})
	}
	sort.Slice(out.Services, func(i, j int) bool { return out.Services[i].Service < out.Services[j].Service })
	return out
}

// Gauges exports the reconciler's desired/actual replica counts and
// saturation scores — install on an httpkit.Server via SetExtraMetrics.
func (c *Controller) Gauges() []httpkit.Gauge {
	status := c.Status()
	out := make([]httpkit.Gauge, 0, 4*len(status.Services))
	for _, s := range status.Services {
		labels := map[string]string{"service": s.Service}
		out = append(out,
			httpkit.Gauge{Name: "teastore_replicas_desired", Help: "Replica count the reconciler is driving toward.", Labels: labels, Value: float64(s.Desired)},
			httpkit.Gauge{Name: "teastore_replicas_actual", Help: "Live replica count observed by the reconciler.", Labels: labels, Value: float64(s.Actual)},
			httpkit.Gauge{Name: "teastore_saturation_score", Help: "Per-service saturation score (1.0 = at the scale-up threshold).", Labels: labels, Value: s.Score},
			httpkit.Gauge{Name: "teastore_replacements_total", Help: "Unhealthy replicas replaced by the reconciler.", Labels: labels, Value: float64(s.Replacements)},
		)
	}
	c.mu.Lock()
	for name, st := range c.state {
		urls := make([]string, 0, len(st.health))
		for url := range st.health {
			urls = append(urls, url)
		}
		sort.Strings(urls)
		for _, url := range urls {
			v := 1.0
			if !st.health[url] {
				v = 0
			}
			out = append(out, httpkit.Gauge{
				Name:   "teastore_replica_health",
				Help:   "Reconciler's per-replica health verdict (1 healthy, 0 unhealthy).",
				Labels: map[string]string{"service": name, "replica": hostOf(url)},
				Value:  v,
			})
		}
	}
	c.mu.Unlock()
	return out
}

// Mux serves the controller's HTTP API: GET /status with the full
// reconciler state.
func (c *Controller) Mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /status", func(w http.ResponseWriter, r *http.Request) {
		httpkit.WriteJSON(w, http.StatusOK, c.Status())
	})
	return mux
}

// windowedP99 estimates the p99 latency of the scrape window from
// cumulative histogram bucket deltas, merged across replicas. Lifetime
// percentiles go stale the moment load changes; the delta distribution is
// exactly the traffic since the last tick.
func windowedP99(prev, cur []map[int64]int64) time.Duration {
	merged := map[int64]int64{}
	for i := range cur {
		for low, count := range cur[i] {
			if d := count - prev[i][low]; d > 0 {
				merged[low] += d
			}
		}
	}
	var total int64
	lows := make([]int64, 0, len(merged))
	for low, count := range merged {
		total += count
		lows = append(lows, low)
	}
	if total == 0 {
		return 0
	}
	sort.Slice(lows, func(i, j int) bool { return lows[i] < lows[j] })
	rank := (total*99 + 99) / 100 // ceil(0.99 * total)
	var seen int64
	for _, low := range lows {
		seen += merged[low]
		if seen >= rank {
			return time.Duration(low)
		}
	}
	return time.Duration(lows[len(lows)-1])
}

// bucketMap indexes histogram buckets by their low bound.
func bucketMap(bs []metrics.Bucket) map[int64]int64 {
	out := make(map[int64]int64, len(bs))
	for _, b := range bs {
		out[b.Low] = b.Count
	}
	return out
}

// hostOf strips the scheme from a base URL, yielding the host:port form
// breaker maps are keyed by.
func hostOf(url string) string {
	for _, prefix := range []string{"http://", "https://"} {
		if len(url) > len(prefix) && url[:len(prefix)] == prefix {
			return url[len(prefix):]
		}
	}
	return url
}

func clamp(v int, b Bounds) int {
	if v < b.Min {
		return b.Min
	}
	if v > b.Max {
		return b.Max
	}
	return v
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func maxf(vs ...float64) float64 {
	out := vs[0]
	for _, v := range vs[1:] {
		if v > out {
			out = v
		}
	}
	return out
}
