package scalectl

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/placement"
	"repro/internal/topology"
)

// slotFakeTarget extends the drainable fake with slot bookkeeping, the
// way teastore.Stack binds replicas to slots: StartReplicaInSlot records
// the slot under the new replica's URL, drains unbind it.
type slotFakeTarget struct {
	*drainableTarget

	slotMu     sync.Mutex
	slots      map[string]placement.Slot // replica URL → slot
	slotStarts int
}

func newSlotFakeTarget(t *testing.T) *slotFakeTarget {
	return &slotFakeTarget{
		drainableTarget: newDrainableTarget(t),
		slots:           map[string]placement.Slot{},
	}
}

// addInSlot seeds one pre-placed replica, assigning its slot through the
// policy the way the stack does at boot.
func (f *slotFakeTarget) addInSlot(service string, pol placement.Policy) *fakeInstance {
	slot, err := pol.Assign(service, f.AllSlots())
	if err != nil {
		f.t.Fatal(err)
	}
	inst := f.add(service)
	f.slotMu.Lock()
	f.slots[inst.srv.URL] = slot
	f.slotMu.Unlock()
	return inst
}

func (f *slotFakeTarget) AllSlots() []placement.Slot {
	f.slotMu.Lock()
	defer f.slotMu.Unlock()
	urls := make([]string, 0, len(f.slots))
	for url := range f.slots {
		urls = append(urls, url)
	}
	sort.Strings(urls)
	out := make([]placement.Slot, 0, len(urls))
	for _, url := range urls {
		out = append(out, f.slots[url])
	}
	return out
}

func (f *slotFakeTarget) SlotOf(service, url string) (placement.Slot, bool) {
	f.slotMu.Lock()
	defer f.slotMu.Unlock()
	s, ok := f.slots[url]
	return s, ok
}

func (f *slotFakeTarget) StartReplicaInSlot(service string, slot placement.Slot) error {
	f.mu.Lock()
	if err := f.startErr; err != nil {
		f.mu.Unlock()
		return err
	}
	f.starts[service]++
	f.mu.Unlock()
	inst := f.add(service)
	f.slotMu.Lock()
	f.slots[inst.srv.URL] = slot
	f.slotStarts++
	f.slotMu.Unlock()
	return nil
}

func (f *slotFakeTarget) DrainReplica(ctx context.Context, service, url string) error {
	if err := f.drainableTarget.DrainReplica(ctx, service, url); err != nil {
		return err
	}
	f.slotMu.Lock()
	delete(f.slots, url)
	f.slotMu.Unlock()
	return nil
}

// lastSlot returns the newest replica's slot for a service.
func (f *slotFakeTarget) lastSlot(service string) placement.Slot {
	f.mu.Lock()
	list := f.replicas[service]
	url := list[len(list)-1].srv.URL
	f.mu.Unlock()
	f.slotMu.Lock()
	defer f.slotMu.Unlock()
	return f.slots[url]
}

func ccxPolicy(t *testing.T, slotCores int) placement.Policy {
	t.Helper()
	pol, err := placement.NewPolicy("ccx", topology.Small(), nil, slotCores)
	if err != nil {
		t.Fatal(err)
	}
	return pol
}

// TestScaleUpPicksLeastContendedCell: with one webui replica in CCX 0, a
// saturation-driven scale-up must land the new replica in CCX 1 — the
// policy's least-contended cell — and bind it through StartReplicaInSlot.
func TestScaleUpPicksLeastContendedCell(t *testing.T) {
	pol := ccxPolicy(t, 2)
	ft := newSlotFakeTarget(t)
	inst := ft.addInSlot("webui", pol)
	if got := ft.lastSlot("webui").Cell; got != 0 {
		t.Fatalf("seed replica in cell %d, want 0", got)
	}

	ctl := newTestController(t, ft, Config{
		Services:      map[string]Bounds{"webui": {Min: 1, Max: 3}},
		UpStableTicks: 1,
		Placement:     pol,
	})
	saturate(inst)
	ctl.Tick(context.Background())

	ft.slotMu.Lock()
	slotStarts := ft.slotStarts
	ft.slotMu.Unlock()
	if slotStarts != 1 {
		t.Fatalf("slot starts = %d, want 1 (scale-up must go through StartReplicaInSlot)", slotStarts)
	}
	got := ft.lastSlot("webui")
	if got.Cell != 1 || got.Level != topology.LevelCCX {
		t.Fatalf("scale-up slot = %v, want the uncontended CCX 1", got)
	}
	st := ctl.Status().Services[0]
	if len(st.Slots) != 2 {
		t.Fatalf("status slots = %v, want 2 labels", st.Slots)
	}
	for _, label := range st.Slots {
		if !strings.HasPrefix(label, "ccx:") {
			t.Fatalf("slot label %q lacks the ccx: prefix", label)
		}
	}
}

// TestReplacementInheritsSlot: the stand-in for a sick replica must take
// over the sick replica's slot, even when the policy would place a fresh
// replica elsewhere.
func TestReplacementInheritsSlot(t *testing.T) {
	pol := ccxPolicy(t, 2)
	ft := newSlotFakeTarget(t)
	r0 := ft.addInSlot("webui", pol) // cell 0
	r1 := ft.addInSlot("webui", pol) // cell 1
	ft.addInSlot("webui", pol)       // cell 0 (tie → lowest)
	sickSlot, ok := ft.SlotOf("webui", r0.srv.URL)
	if !ok || sickSlot.Cell != 0 {
		t.Fatalf("seed slots wrong: %v ok=%v", sickSlot, ok)
	}

	cfg := healthConfig(map[string]Bounds{"webui": {Min: 2, Max: 4}})
	cfg.Placement = pol
	ctl := newTestController(t, ft, cfg)
	ctx := context.Background()

	ctl.Tick(ctx) // prime windows
	flagEjected(r1, "webui", hostOf(r0.srv.URL))
	for i := 0; i < 3; i++ {
		ctl.Tick(ctx)
	}
	if got := ft.drained(); len(got) != 1 || got[0] != r0.srv.URL {
		t.Fatalf("drained %v, want [%s]", got, r0.srv.URL)
	}
	fresh := ft.lastSlot("webui")
	if fresh.Cell != sickSlot.Cell || fresh.Level != sickSlot.Level {
		t.Fatalf("replacement slot = %v, want inherited %v", fresh, sickSlot)
	}
	// The policy alone would have picked cell 1 (2 live webui in cell 0
	// would make it least contended after the drain) — the match above is
	// only meaningful because inheritance overrode it.
}

// TestPackedPolicyMatchesNoPlacementDecisions: policy=packed must
// reproduce the placement-disabled reconciler's decision sequence
// bit-for-bit under an identical script — placement changes where
// replicas land, never whether the controller scales.
func TestPackedPolicyMatchesNoPlacementDecisions(t *testing.T) {
	mach := topology.Small()
	packed, err := placement.NewPolicy("packed", mach, nil, 2)
	if err != nil {
		t.Fatal(err)
	}

	type run struct {
		target  Target
		inst    *fakeInstance
		ctl     *Controller
		actions []string
		counts  []int
	}
	mkRun := func(withPlacement bool) *run {
		r := &run{}
		if withPlacement {
			ft := newSlotFakeTarget(t)
			r.inst = ft.addInSlot("webui", packed)
			r.target = ft
		} else {
			ft := newFakeTarget(t)
			r.inst = ft.add("webui")
			r.target = ft
		}
		cfg := Config{
			Services:        map[string]Bounds{"webui": {Min: 1, Max: 3}},
			UpStableTicks:   2,
			DownStableTicks: 2,
			DownCooldown:    time.Nanosecond,
		}
		if withPlacement {
			cfg.Placement = packed
		}
		r.ctl = newTestController(t, r.target, cfg)
		return r
	}
	runs := []*run{mkRun(false), mkRun(true)}

	// Identical script on both: saturate to a scale-up, then idle to a
	// scale-down. Each step records the decision and the replica count.
	script := []func(*run){
		func(r *run) { saturate(r.inst) },
		func(r *run) { saturate(r.inst) },
		func(r *run) { saturate(r.inst) },
		func(r *run) { idle(r.inst) },
		func(r *run) { idle(r.inst) },
		func(r *run) { idle(r.inst) },
		func(r *run) { idle(r.inst) },
	}
	for _, step := range script {
		for _, r := range runs {
			step(r)
			r.ctl.Tick(context.Background())
			r.actions = append(r.actions, r.ctl.Status().Services[0].LastDecision.Action)
			r.counts = append(r.counts, len(r.target.ReplicaURLs("webui")))
		}
	}
	if fmt.Sprint(runs[0].actions) != fmt.Sprint(runs[1].actions) {
		t.Fatalf("decision sequences diverge:\n  no placement: %v\n  packed:       %v",
			runs[0].actions, runs[1].actions)
	}
	if fmt.Sprint(runs[0].counts) != fmt.Sprint(runs[1].counts) {
		t.Fatalf("replica-count sequences diverge:\n  no placement: %v\n  packed:       %v",
			runs[0].counts, runs[1].counts)
	}
}

// TestPlacementFallsBackWithoutSlotTarget: a policy configured against a
// target that cannot bind slots degrades to plain StartReplica.
func TestPlacementFallsBackWithoutSlotTarget(t *testing.T) {
	ft := newFakeTarget(t)
	inst := ft.add("webui")
	ctl := newTestController(t, ft, Config{
		Services:      map[string]Bounds{"webui": {Min: 1, Max: 2}},
		UpStableTicks: 1,
		Placement:     ccxPolicy(t, 2),
	})
	saturate(inst)
	ctl.Tick(context.Background())
	ft.mu.Lock()
	starts := ft.starts["webui"]
	ft.mu.Unlock()
	if starts != 1 {
		t.Fatalf("starts = %d, want 1 via the StartReplica fallback", starts)
	}
	if slots := ctl.Status().Services[0].Slots; slots != nil {
		t.Fatalf("status slots = %v, want none without a slot target", slots)
	}
}

// failingPolicy always refuses to assign.
type failingPolicy struct{ mach *topology.Machine }

func (p failingPolicy) Name() string               { return "failing" }
func (p failingPolicy) Machine() *topology.Machine { return p.mach }
func (p failingPolicy) Assign(string, []placement.Slot) (placement.Slot, error) {
	return placement.Slot{}, fmt.Errorf("no room")
}

// TestPlacementAssignFailureHolds: a policy error turns the scale-up
// into a hold with the reason surfaced, not a crash or a silent start.
func TestPlacementAssignFailureHolds(t *testing.T) {
	ft := newSlotFakeTarget(t)
	pol := ccxPolicy(t, 2)
	inst := ft.addInSlot("webui", pol)
	ctl := newTestController(t, ft, Config{
		Services:      map[string]Bounds{"webui": {Min: 1, Max: 2}},
		UpStableTicks: 1,
		Placement:     failingPolicy{mach: topology.Small()},
	})
	saturate(inst)
	ctl.Tick(context.Background())
	if n := len(ft.ReplicaURLs("webui")); n != 1 {
		t.Fatalf("replicas = %d, want 1 (assign failed)", n)
	}
	st := ctl.Status().Services[0]
	if st.LastDecision.Action != ActionHold || !strings.Contains(st.LastDecision.Reason, "no room") {
		t.Fatalf("decision = %+v, want hold citing the placement error", st.LastDecision)
	}
}
