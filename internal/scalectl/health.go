package scalectl

import (
	"context"
	"fmt"
	"sort"
	"time"
)

// ReplicaDrainer is an optional Target extension: drain and stop one
// specific replica identified by its base URL. Targets that implement it
// let the reconciler *replace* a gray-failing replica — start a fresh
// one, then gracefully retire the sick one — instead of only trimming
// the newest. teastore.Stack implements it; fakes that don't simply get
// no replacement behaviour.
type ReplicaDrainer interface {
	DrainReplica(ctx context.Context, service, url string) error
}

// minHealthWindow is how many requests a replica must have served inside
// one scrape window before its windowed p99 is judged against its peers;
// below it, a couple of unlucky samples would dominate the estimate.
const minHealthWindow = 5

// minP99Excess is the absolute windowed-p99 excess over the peer median a
// latency judgement additionally requires: on a fast pool a pure ratio
// trips on scheduling noise (5ms vs 16ms), and replacing a replica is far
// too expensive a response to noise.
const minP99Excess = 50 * time.Millisecond

// replicaWindow is one replica's windowed traffic view for a tick, the
// raw material of the health judgement.
type replicaWindow struct {
	url  string
	dReq int64
	p99  time.Duration
}

// ejectedByCallers scans every scraped instance's client-side balancer
// view and collects, per destination service, the replica addresses some
// caller currently holds ejected as an outlier. The reconciler trusts
// the data plane's verdict: callers watch every response, while the
// control plane only samples once per tick.
func ejectedByCallers(snaps map[string][]instanceSnap) map[string]map[string]bool {
	out := map[string]map[string]bool{}
	for _, list := range snaps {
		for _, is := range list {
			if !is.ok {
				continue
			}
			for dest, replicas := range is.snap.Resilience.Replicas {
				for addr, rc := range replicas {
					if rc.Ejected {
						if out[dest] == nil {
							out[dest] = map[string]bool{}
						}
						out[dest][addr] = true
					}
				}
			}
		}
	}
	return out
}

// checkHealth updates the per-replica health view from this tick's
// windows and returns the URL due for replacement, if any: a replica
// that has stayed unhealthy — caller-ejected or a windowed-p99 outlier
// against its peers — for ReplaceAfterTicks consecutive ticks, provided
// the per-service replacement cooldown has lapsed. Streak bookkeeping
// always runs so /status stays honest even when replacement is disabled
// or the target cannot drain by URL.
func (c *Controller) checkHealth(st *serviceState, windows []replicaWindow, ejected map[string]bool, now time.Time) (replaceURL, reason string) {
	unhealthy := map[string]string{}
	for _, w := range windows {
		if ejected[hostOf(w.url)] {
			unhealthy[w.url] = "ejected by caller balancers"
		}
	}

	// A replica is a latency outlier when its windowed p99 stands above a
	// multiple of the leave-one-out median of its peers — judged only
	// among replicas that saw real traffic this window, and against the
	// peers' median so one sick replica can't drag the baseline.
	var judged []replicaWindow
	for _, w := range windows {
		if w.dReq >= minHealthWindow && w.p99 > 0 {
			judged = append(judged, w)
		}
	}
	if len(judged) >= 2 {
		for i, w := range judged {
			peers := make([]float64, 0, len(judged)-1)
			for j, o := range judged {
				if j != i {
					peers = append(peers, float64(o.p99))
				}
			}
			base := medianF(peers)
			if base > 0 && float64(w.p99) > c.cfg.OutlierP99Factor*base &&
				float64(w.p99)-base > float64(minP99Excess) {
				if _, dup := unhealthy[w.url]; !dup {
					unhealthy[w.url] = fmt.Sprintf("windowed p99 %.0fms > %.1f× peer median %.0fms",
						float64(w.p99)/1e6, c.cfg.OutlierP99Factor, base/1e6)
				}
			}
		}
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	live := map[string]bool{}
	for _, w := range windows {
		live[w.url] = true
	}
	for url := range st.health {
		if !live[url] {
			delete(st.health, url)
			delete(st.unhealthyStreak, url)
		}
	}
	worst := 0
	for _, w := range windows {
		why, bad := unhealthy[w.url]
		st.health[w.url] = !bad
		if !bad {
			delete(st.unhealthyStreak, w.url)
			continue
		}
		st.unhealthyStreak[w.url]++
		if s := st.unhealthyStreak[w.url]; s >= c.cfg.ReplaceAfterTicks && s > worst {
			worst = s
			replaceURL, reason = w.url, why
		}
	}
	if c.cfg.ReplaceAfterTicks <= 0 {
		return "", ""
	}
	if replaceURL != "" && now.Sub(st.lastReplace) < c.cfg.ReplaceCooldown {
		return "", ""
	}
	return replaceURL, reason
}

// replaceReplica swaps one unhealthy replica for a fresh one: start the
// replacement first so capacity never dips, then drain the sick replica
// gracefully. A failed start aborts the replacement; a failed drain
// still counts it (the fresh replica is live — the sick one just needs
// another attempt or the crash path to clear it).
func (c *Controller) replaceReplica(ctx context.Context, st *serviceState, name, url, reason string, now time.Time, b Bounds) {
	rd, ok := c.target.(ReplicaDrainer)
	if !ok {
		c.record(st, ActionHold, fmt.Sprintf("replace wanted for %s (%s) but target cannot drain by URL", url, reason), now, clamp(st.actual, b))
		return
	}
	// With placement active the replacement inherits the sick replica's
	// slot; SlotOf must run before the drain unbinds it.
	if err := c.startReplacement(name, url); err != nil {
		c.record(st, ActionHold, fmt.Sprintf("replace wanted for %s (%s) but start failed: %v", url, reason, err), now, clamp(st.actual, b))
		return
	}
	drainCtx, cancel := context.WithTimeout(ctx, c.cfg.DrainTimeout)
	defer cancel()
	err := rd.DrainReplica(drainCtx, name, url)
	c.mu.Lock()
	st.replacements++
	st.lastReplace = now
	st.lastScale = now
	st.upStreak, st.downStreak = 0, 0
	delete(st.unhealthyStreak, url)
	delete(st.health, url)
	c.mu.Unlock()
	if err != nil {
		c.record(st, ActionHold, fmt.Sprintf("replacement for %s started a fresh replica but drain failed: %v", url, err), now, clamp(st.actual+1, b))
		return
	}
	c.record(st, ActionReplace, fmt.Sprintf("replaced %s: %s", url, reason), now, clamp(st.actual, b))
}

// unhealthyList snapshots the currently-unhealthy replica URLs, sorted.
// Caller must hold c.mu.
func unhealthyList(st *serviceState) []string {
	var out []string
	for url, healthy := range st.health {
		if !healthy {
			out = append(out, url)
		}
	}
	sort.Strings(out)
	return out
}

// medianF of a small unsorted slice (sorts its argument).
func medianF(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sort.Float64s(xs)
	n := len(xs)
	if n%2 == 1 {
		return xs[n/2]
	}
	return (xs[n/2-1] + xs[n/2]) / 2
}
