package scalectl

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/httpkit"
	"repro/internal/metrics"
)

// drainableTarget extends the fake with drain-by-URL so the reconciler's
// replacement path can run against it.
type drainableTarget struct {
	*fakeTarget

	drainMu sync.Mutex
	drains  []string
}

func newDrainableTarget(t *testing.T) *drainableTarget {
	return &drainableTarget{fakeTarget: newFakeTarget(t)}
}

func (d *drainableTarget) DrainReplica(ctx context.Context, service, url string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	list := d.replicas[service]
	for i, inst := range list {
		if inst.srv.URL == url {
			d.replicas[service] = append(append([]*fakeInstance{}, list[:i]...), list[i+1:]...)
			d.drainMu.Lock()
			d.drains = append(d.drains, url)
			d.drainMu.Unlock()
			return nil
		}
	}
	return fmt.Errorf("fake: no %s replica at %s", service, url)
}

func (d *drainableTarget) drained() []string {
	d.drainMu.Lock()
	defer d.drainMu.Unlock()
	return append([]string{}, d.drains...)
}

// flagEjected scripts reporter's metrics to claim its balancer currently
// ejects addr when talking to dest — the caller-side outlier verdict the
// reconciler trusts.
func flagEjected(reporter *fakeInstance, dest, addr string) {
	reporter.set(func(s *httpkit.MetricsSnapshot) {
		if s.Resilience.Replicas == nil {
			s.Resilience.Replicas = map[string]map[string]httpkit.ReplicaCounts{}
		}
		if s.Resilience.Replicas[dest] == nil {
			s.Resilience.Replicas[dest] = map[string]httpkit.ReplicaCounts{}
		}
		s.Resilience.Replicas[dest][addr] = httpkit.ReplicaCounts{Requests: 1, Ejected: true}
	})
}

// advance scripts one scrape window of traffic: reqDelta requests all
// landing in the latency bucket at low.
func advance(inst *fakeInstance, reqDelta int64, low time.Duration) {
	inst.set(func(s *httpkit.MetricsSnapshot) {
		s.Requests += reqDelta
		for i := range s.OverallBuckets {
			if s.OverallBuckets[i].Low == int64(low) {
				s.OverallBuckets[i].Count += reqDelta
				return
			}
		}
		s.OverallBuckets = append(s.OverallBuckets, metrics.Bucket{Low: int64(low), Count: reqDelta})
	})
}

func healthConfig(services map[string]Bounds) Config {
	return Config{
		Services:          services,
		ReplaceAfterTicks: 3,
		ReplaceCooldown:   250 * time.Millisecond,
		// Keep the saturation logic out of the way: these tests exercise
		// only the health path.
		DownStableTicks: 1 << 20,
		UpStableTicks:   1 << 20,
	}
}

// TestReplaceCallerEjectedOncePerCooldown pins the anti-flap contract:
// a replica that stays caller-ejected for ReplaceAfterTicks ticks is
// replaced exactly once, and no second replacement fires until the
// cooldown lapses — no matter how loudly the health signal keeps firing.
func TestReplaceCallerEjectedOncePerCooldown(t *testing.T) {
	target := newDrainableTarget(t)
	r0 := target.add("webui")
	r1 := target.add("webui")
	target.add("webui")

	c, err := New(target, healthConfig(map[string]Bounds{"webui": {Min: 2, Max: 4}}))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	c.Tick(ctx) // prime the per-replica windows
	flagEjected(r1, "webui", hostOf(r0.srv.URL))

	for i := 0; i < 3; i++ {
		c.Tick(ctx)
	}
	if got := target.drained(); len(got) != 1 || got[0] != r0.srv.URL {
		t.Fatalf("want exactly [%s] drained after %d unhealthy ticks, got %v", r0.srv.URL, 3, got)
	}
	target.mu.Lock()
	starts := target.starts["webui"]
	fresh := target.replicas["webui"][len(target.replicas["webui"])-1]
	target.mu.Unlock()
	if starts != 1 {
		t.Fatalf("want 1 replacement start, got %d", starts)
	}
	st := c.Status()
	if st.Services[0].Replacements != 1 {
		t.Fatalf("status replacements = %d, want 1", st.Services[0].Replacements)
	}
	if st.Services[0].LastDecision.Action != ActionReplace {
		t.Fatalf("last decision = %+v, want %s", st.Services[0].LastDecision, ActionReplace)
	}

	// Keep the alarm ringing — now about the freshly started replica —
	// and verify the cooldown holds the line.
	flagEjected(r1, "webui", hostOf(fresh.srv.URL))
	for i := 0; i < 5; i++ {
		c.Tick(ctx)
	}
	if got := target.drained(); len(got) != 1 {
		t.Fatalf("cooldown violated: %d replacements before it lapsed (%v)", len(got), got)
	}

	// After the cooldown, the still-unhealthy replica is replaced.
	time.Sleep(300 * time.Millisecond)
	c.Tick(ctx)
	if got := target.drained(); len(got) != 2 || got[1] != fresh.srv.URL {
		t.Fatalf("want second replacement of %s after cooldown, got %v", fresh.srv.URL, got)
	}
}

// TestReplaceWindowedP99Outlier drives replacement purely from the
// control plane's own windowed per-replica p99 — no caller ejection —
// so a gray replica is replaced even when its callers keep tolerating it.
func TestReplaceWindowedP99Outlier(t *testing.T) {
	target := newDrainableTarget(t)
	fast1 := target.add("webui")
	fast2 := target.add("webui")
	slow := target.add("webui")

	c, err := New(target, healthConfig(map[string]Bounds{"webui": {Min: 2, Max: 4}}))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	tickWindow := func() {
		advance(fast1, 100, 5*time.Millisecond)
		advance(fast2, 100, 5*time.Millisecond)
		advance(slow, 100, 400*time.Millisecond)
		c.Tick(ctx)
	}
	tickWindow() // prime: first scrape has no window to judge
	for i := 0; i < 3; i++ {
		tickWindow()
	}
	if got := target.drained(); len(got) != 1 || got[0] != slow.srv.URL {
		t.Fatalf("want the slow replica %s replaced, got %v", slow.srv.URL, got)
	}
	st := c.Status()
	if !strings.Contains(st.Services[0].LastDecision.Reason, "p99") {
		t.Fatalf("replace reason should cite the p99 outlier, got %q", st.Services[0].LastDecision.Reason)
	}
}

// TestReplacementNeedsDrainerAndEnable pins the two off-switches: a
// target without DrainReplica is never scaled by the health path, and
// ReplaceAfterTicks < 0 disables replacement outright — while the
// unhealthy view stays visible in /status either way.
func TestReplacementNeedsDrainerAndEnable(t *testing.T) {
	t.Run("non-drainer target", func(t *testing.T) {
		target := newFakeTarget(t) // no DrainReplica
		r0 := target.add("webui")
		r1 := target.add("webui")
		c, err := New(target, healthConfig(map[string]Bounds{"webui": {Min: 2, Max: 4}}))
		if err != nil {
			t.Fatal(err)
		}
		ctx := context.Background()
		c.Tick(ctx)
		flagEjected(r1, "webui", hostOf(r0.srv.URL))
		for i := 0; i < 5; i++ {
			c.Tick(ctx)
		}
		target.mu.Lock()
		starts := target.starts["webui"]
		target.mu.Unlock()
		if starts != 0 {
			t.Fatalf("non-drainer target got %d replacement starts, want 0", starts)
		}
		st := c.Status()
		if got := st.Services[0].Unhealthy; len(got) != 1 || got[0] != r0.srv.URL {
			t.Fatalf("unhealthy = %v, want [%s]", got, r0.srv.URL)
		}
	})

	t.Run("disabled", func(t *testing.T) {
		target := newDrainableTarget(t)
		r0 := target.add("webui")
		r1 := target.add("webui")
		cfg := healthConfig(map[string]Bounds{"webui": {Min: 2, Max: 4}})
		cfg.ReplaceAfterTicks = -1
		c, err := New(target, cfg)
		if err != nil {
			t.Fatal(err)
		}
		ctx := context.Background()
		c.Tick(ctx)
		flagEjected(r1, "webui", hostOf(r0.srv.URL))
		for i := 0; i < 5; i++ {
			c.Tick(ctx)
		}
		if got := target.drained(); len(got) != 0 {
			t.Fatalf("replacement disabled but %v drained", got)
		}
		st := c.Status()
		if got := st.Services[0].Unhealthy; len(got) != 1 || got[0] != r0.srv.URL {
			t.Fatalf("unhealthy = %v, want [%s]", got, r0.srv.URL)
		}
	})
}

// TestReplicaHealthGauges pins the exported health metrics: one
// teastore_replica_health series per live replica and the replacement
// counter.
func TestReplicaHealthGauges(t *testing.T) {
	target := newDrainableTarget(t)
	r0 := target.add("webui")
	r1 := target.add("webui")
	c, err := New(target, healthConfig(map[string]Bounds{"webui": {Min: 2, Max: 2}}))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	c.Tick(ctx)
	flagEjected(r1, "webui", hostOf(r0.srv.URL))
	c.Tick(ctx)

	gauges := c.Gauges()
	health := map[string]float64{}
	replacements := -1.0
	for _, g := range gauges {
		switch g.Name {
		case "teastore_replica_health":
			health[g.Labels["replica"]] = g.Value
		case "teastore_replacements_total":
			replacements = g.Value
		}
	}
	if got := health[hostOf(r0.srv.URL)]; got != 0 {
		t.Fatalf("flagged replica health gauge = %v, want 0", got)
	}
	if got := health[hostOf(r1.srv.URL)]; got != 1 {
		t.Fatalf("healthy replica health gauge = %v, want 1", got)
	}
	if replacements != 0 {
		t.Fatalf("teastore_replacements_total = %v, want 0", replacements)
	}
}
