package microarch

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/desim"
	"repro/internal/placement"
	"repro/internal/sim"
	"repro/internal/topology"
)

func TestServiceProfilesCoverAllServices(t *testing.T) {
	profiles := ServiceProfiles()
	if len(profiles) != sim.NumServices {
		t.Fatalf("profiles for %d services, want %d", len(profiles), sim.NumServices)
	}
	for svc, p := range profiles {
		if p.Name != svc.String() {
			t.Errorf("profile for %v named %q", svc, p.Name)
		}
		if p.IPCIdeal <= 0 || p.FrontendStallFrac < 0 || p.FrontendStallFrac >= 1 {
			t.Errorf("%v profile non-physical: %+v", svc, p)
		}
	}
}

func TestEffectiveIPCBehaviour(t *testing.T) {
	p := CounterProfile{IPCIdeal: 2.0, FrontendStallFrac: 0.2, MemStallWeight: 0.5}
	base := p.EffectiveIPC(0, 1)
	if base >= 2.0 {
		t.Fatal("frontend stalls must cost IPC")
	}
	missy := p.EffectiveIPC(0.8, 1)
	if missy >= base {
		t.Fatal("misses must cost IPC")
	}
	remote := p.EffectiveIPC(0.8, 3.2)
	if remote >= missy {
		t.Fatal("remote memory must cost IPC")
	}
	// Clamps.
	if p.EffectiveIPC(-1, 0) != base {
		t.Fatal("clamping wrong")
	}
	if floor := (CounterProfile{IPCIdeal: 0.1, FrontendStallFrac: 0.9, MemStallWeight: 5}).EffectiveIPC(1, 3.2); floor < 0.05 {
		t.Fatalf("IPC floor violated: %v", floor)
	}
}

// The paper's headline contrast: microservices retire fewer instructions
// per cycle, stall more in the frontend, and carry far bigger instruction
// footprints than SPEC-like compute.
func TestMicroservicesDistinctFromSPEC(t *testing.T) {
	rows := Compare(0.5, 1.2)
	var microIPC, specIPC []float64
	var microFE, specFE []float64
	var microIFoot, specIFoot []int
	for _, r := range rows {
		if strings.HasPrefix(r.Name, "teastore-") {
			microIPC = append(microIPC, r.EffectiveIPC)
			microFE = append(microFE, r.FrontendStallPct)
			microIFoot = append(microIFoot, r.InstrFootprintKB)
		} else if r.Name != "stream-like" { // stream is the memory-bound outlier
			specIPC = append(specIPC, r.EffectiveIPC)
			specFE = append(specFE, r.FrontendStallPct)
			specIFoot = append(specIFoot, r.InstrFootprintKB)
		}
	}
	if len(microIPC) != sim.NumServices || len(specIPC) == 0 {
		t.Fatalf("row partition wrong: %d micro, %d spec", len(microIPC), len(specIPC))
	}
	if maxF(microIPC) >= minF(specIPC) {
		t.Fatalf("every microservice should retire below SPEC-like IPC: micro max %.2f, spec min %.2f",
			maxF(microIPC), minF(specIPC))
	}
	if minF(microFE) <= maxF(specFE) {
		t.Fatalf("microservice frontend stalls should exceed SPEC-like: micro min %.1f%%, spec max %.1f%%",
			minF(microFE), maxF(specFE))
	}
	if minI(microIFoot) <= maxI(specIFoot) {
		t.Fatal("microservice instruction footprints should dwarf SPEC-like")
	}
}

func TestWeightedIPC(t *testing.T) {
	mach := topology.Small()
	res, err := sim.Run(sim.Config{
		Machine:    mach,
		Deployment: placement.OSDefault(mach),
		Users:      30,
		Seed:       1,
		Warmup:     desim.Second,
		Measure:    2 * desim.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	ipc, err := WeightedMicroserviceIPC(res, 0.5, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if ipc <= 0.05 || ipc >= 1.6 {
		t.Fatalf("weighted IPC %v outside plausible band", ipc)
	}
	if _, err := WeightedMicroserviceIPC(sim.Result{}, 0.5, 1); err == nil {
		t.Fatal("empty result accepted")
	}
}

// Property: effective IPC is monotone non-increasing in miss ratio and
// latency factor, and always within (0, IPCIdeal].
func TestPropertyIPCMonotone(t *testing.T) {
	p := ServiceProfiles()[sim.WebUI]
	f := func(m1, m2, l1, l2 uint8) bool {
		miss1 := float64(m1) / 255
		miss2 := float64(m2) / 255
		lat1 := 1 + float64(l1)/64
		lat2 := 1 + float64(l2)/64
		if miss1 > miss2 {
			miss1, miss2 = miss2, miss1
		}
		if lat1 > lat2 {
			lat1, lat2 = lat2, lat1
		}
		hi := p.EffectiveIPC(miss1, lat1)
		lo := p.EffectiveIPC(miss2, lat2)
		return lo <= hi+1e-12 && hi <= p.IPCIdeal && lo > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func maxF(xs []float64) float64 {
	out := xs[0]
	for _, x := range xs {
		if x > out {
			out = x
		}
	}
	return out
}

func minF(xs []float64) float64 {
	out := xs[0]
	for _, x := range xs {
		if x < out {
			out = x
		}
	}
	return out
}

func maxI(xs []int) int {
	out := xs[0]
	for _, x := range xs {
		if x > out {
			out = x
		}
	}
	return out
}

func minI(xs []int) int {
	out := xs[0]
	for _, x := range xs {
		if x < out {
			out = x
		}
	}
	return out
}
