// Package microarch models hardware performance-counter behaviour for the
// paper's final analysis: how microservice code differs from the workloads
// CPU designers usually optimize for (SPEC-like compute kernels).
//
// The model assigns each workload a counter profile — ideal IPC, frontend
// stall fraction, instruction footprint, cache MPKIs — and composes it
// with runtime cache/NUMA state to produce effective IPC and stall
// breakdowns. Profiles are calibrated to published characterizations:
// server microservices retire ≈0.5–1.0 IPC with 30–40 % frontend stalls
// and multi-MB instruction footprints, while SPEC-like kernels retire
// 1.5–2.5 IPC dominated by backend/compute.
package microarch

import (
	"fmt"
	"sort"

	"repro/internal/sim"
)

// CounterProfile is one workload's intrinsic microarchitectural character.
type CounterProfile struct {
	Name string
	// IPCIdeal is retirement IPC with perfect caches and no stalls
	// beyond the pipeline's own limits.
	IPCIdeal float64
	// FrontendStallFrac is the fraction of cycles lost to instruction
	// fetch/decode (big code footprints, branchy control flow).
	FrontendStallFrac float64
	// MemStallWeight scales backend memory stalls (cf.
	// sim.ServiceProfile.MemWeight).
	MemStallWeight float64
	// ICacheMPKI / L2MPKI / L3MPKI are misses per kilo-instruction at the
	// reference configuration.
	ICacheMPKI float64
	L2MPKI     float64
	L3MPKI     float64
	// BranchMPKI is mispredicts per kilo-instruction.
	BranchMPKI float64
	// InstrFootprintKB is the active code footprint.
	InstrFootprintKB int
}

// EffectiveIPC composes the profile with runtime cache behaviour: the
// measured L3 miss ratio and the NUMA latency factor inflate backend
// stalls on top of the intrinsic frontend losses.
func (p CounterProfile) EffectiveIPC(l3MissRatio, latFactor float64) float64 {
	if l3MissRatio < 0 {
		l3MissRatio = 0
	}
	if l3MissRatio > 1 {
		l3MissRatio = 1
	}
	if latFactor < 1 {
		latFactor = 1
	}
	backend := p.MemStallWeight * l3MissRatio * latFactor
	denom := 1 + backend
	ipc := p.IPCIdeal * (1 - p.FrontendStallFrac) / denom
	if ipc < 0.05 {
		ipc = 0.05
	}
	return ipc
}

// ServiceProfiles returns the counter profiles of the TeaStore services,
// derived from the simulator's service profiles so the two models agree.
func ServiceProfiles() map[sim.Service]CounterProfile {
	sims := sim.DefaultProfiles()
	out := map[sim.Service]CounterProfile{}
	for svc, sp := range sims {
		out[svc] = CounterProfile{
			Name:              svc.String(),
			IPCIdeal:          1.6,
			FrontendStallFrac: sp.FrontendStall,
			MemStallWeight:    sp.MemWeight,
			ICacheMPKI:        8 + 60*sp.FrontendStall,
			L2MPKI:            6 + 25*sp.MemWeight,
			L3MPKI:            1 + 9*sp.MemWeight,
			BranchMPKI:        4 + 10*sp.FrontendStall,
			InstrFootprintKB:  512 + int(8192*sp.FrontendStall),
		}
	}
	return out
}

// SPECLikeProfiles returns the comparison set: synthetic stand-ins for the
// compute workloads processors are classically designed against.
func SPECLikeProfiles() []CounterProfile {
	return []CounterProfile{
		{
			Name: "spec-int-like", IPCIdeal: 2.4,
			FrontendStallFrac: 0.06, MemStallWeight: 0.15,
			ICacheMPKI: 1.2, L2MPKI: 4.0, L3MPKI: 0.8, BranchMPKI: 5.0,
			InstrFootprintKB: 96,
		},
		{
			Name: "spec-fp-like", IPCIdeal: 2.8,
			FrontendStallFrac: 0.03, MemStallWeight: 0.35,
			ICacheMPKI: 0.4, L2MPKI: 9.0, L3MPKI: 2.5, BranchMPKI: 1.0,
			InstrFootprintKB: 64,
		},
		{
			Name: "stream-like", IPCIdeal: 1.8,
			FrontendStallFrac: 0.02, MemStallWeight: 0.85,
			ICacheMPKI: 0.2, L2MPKI: 30.0, L3MPKI: 20.0, BranchMPKI: 0.5,
			InstrFootprintKB: 32,
		},
	}
}

// Row is one workload's derived counters at an operating point.
type Row struct {
	Name             string
	EffectiveIPC     float64
	FrontendStallPct float64
	ICacheMPKI       float64
	L3MPKI           float64
	InstrFootprintKB int
}

// Compare derives counter rows for every TeaStore service and every
// SPEC-like workload at a common operating point (E9's table). The
// operating point is the L3 miss ratio and NUMA latency factor observed
// for the microservices; SPEC-like kernels use their intrinsic miss
// behaviour (their working sets are cache-resident by design, except
// stream).
func Compare(l3MissRatio, latFactor float64) []Row {
	var rows []Row
	svcProfiles := ServiceProfiles()
	var services []sim.Service
	for svc := range svcProfiles {
		services = append(services, svc)
	}
	sort.Slice(services, func(i, j int) bool { return services[i] < services[j] })
	for _, svc := range services {
		p := svcProfiles[svc]
		rows = append(rows, Row{
			Name:             "teastore-" + p.Name,
			EffectiveIPC:     p.EffectiveIPC(l3MissRatio, latFactor),
			FrontendStallPct: p.FrontendStallFrac * 100,
			ICacheMPKI:       p.ICacheMPKI,
			L3MPKI:           p.L3MPKI * l3MissRatio / 0.5, // scaled to observed pressure
			InstrFootprintKB: p.InstrFootprintKB,
		})
	}
	for _, p := range SPECLikeProfiles() {
		miss := 0.1
		if p.Name == "stream-like" {
			miss = 0.95
		}
		rows = append(rows, Row{
			Name:             p.Name,
			EffectiveIPC:     p.EffectiveIPC(miss, 1.0),
			FrontendStallPct: p.FrontendStallFrac * 100,
			ICacheMPKI:       p.ICacheMPKI,
			L3MPKI:           p.L3MPKI,
			InstrFootprintKB: p.InstrFootprintKB,
		})
	}
	return rows
}

// WeightedMicroserviceIPC aggregates effective IPC across services using
// their busy-share weights from a simulation result.
func WeightedMicroserviceIPC(res sim.Result, l3MissRatio, latFactor float64) (float64, error) {
	profiles := ServiceProfiles()
	var ipc, weight float64
	for _, st := range res.Services {
		p, ok := profiles[st.Service]
		if !ok {
			return 0, fmt.Errorf("microarch: no profile for %v", st.Service)
		}
		ipc += st.BusyShare * p.EffectiveIPC(l3MissRatio, latFactor)
		weight += st.BusyShare
	}
	if weight == 0 {
		return 0, fmt.Errorf("microarch: result has no busy time")
	}
	return ipc / weight, nil
}
