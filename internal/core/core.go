package core
