package core

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/desim"
	"repro/internal/placement"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/workload"
)

// ScalingClass labels how a service scales up.
type ScalingClass int

// Scaling classes, best first.
const (
	// ScalesLinearly: ≥70 % efficiency at 16 cores.
	ScalesLinearly ScalingClass = iota
	// ScalesPartially: 35–70 % efficiency at 16 cores.
	ScalesPartially
	// SerialLimited: <35 % efficiency at 16 cores — replicate instead of
	// growing the allotment.
	SerialLimited
)

func (c ScalingClass) String() string {
	switch c {
	case ScalesLinearly:
		return "linear"
	case ScalesPartially:
		return "partial"
	case SerialLimited:
		return "serial-limited"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// Character is one service's measured scale-up profile.
type Character struct {
	Service sim.Service
	Points  []ScalingPoint
	Fit     USLFit
	Class   ScalingClass
	// Efficiency16 is measured scaling efficiency at 16 cores (or the
	// largest measured count when fewer).
	Efficiency16 float64
	// RecommendedCores is the allotment beyond which the fitted curve
	// gains less than 5 % per doubling.
	RecommendedCores int
}

// CharacterizeConfig controls a characterization run.
type CharacterizeConfig struct {
	Machine *topology.Machine
	// CoreCounts are the allotments to measure; nil means {1,2,4,8,16,32}.
	CoreCounts []int
	// Demand is the handler demand for the microbenchmark; 0 means the
	// mix-weighted mean demand of the service in the default specs.
	Demand desim.Duration
	Seed   int64
	// Warmup/Measure per point; zero means 0.5 s / 2 s.
	Warmup  desim.Duration
	Measure desim.Duration
}

func (c CharacterizeConfig) withDefaults() CharacterizeConfig {
	if len(c.CoreCounts) == 0 {
		c.CoreCounts = []int{1, 2, 4, 8, 16, 32}
	}
	if c.Warmup == 0 {
		c.Warmup = desim.Duration(500 * desim.Millisecond)
	}
	if c.Measure == 0 {
		c.Measure = 2 * desim.Second
	}
	return c
}

// MeanDemand returns the mix-weighted mean handler demand of a service
// under the given request specs and request mix.
func MeanDemand(svc sim.Service, specs map[workload.Request]sim.RequestSpec, mix [workload.NumRequests]float64) desim.Duration {
	var weighted, hits float64
	for r, frac := range mix {
		spec, ok := specs[workload.Request(r)]
		if !ok {
			continue
		}
		d := spec.DemandOn(svc)
		if d > 0 {
			weighted += frac * float64(d)
			hits += frac
		}
	}
	if hits == 0 {
		return 0
	}
	return desim.Duration(weighted / hits)
}

// CharacterizeService measures one service's isolated scaling curve and
// fits the USL to it.
func CharacterizeService(svc sim.Service, cfg CharacterizeConfig) (Character, error) {
	cfg = cfg.withDefaults()
	if cfg.Machine == nil {
		return Character{}, fmt.Errorf("core: CharacterizeConfig.Machine is required")
	}
	demand := cfg.Demand
	if demand == 0 {
		mix := workload.Browse().Mix(rand.New(rand.NewSource(cfg.Seed)), 2000)
		demand = MeanDemand(svc, sim.DefaultRequestSpecs(), mix)
		if demand == 0 {
			demand = desim.Duration(500 * desim.Microsecond)
		}
	}

	ch := Character{Service: svc}
	for _, cores := range cfg.CoreCounts {
		if cores > cfg.Machine.NumCores() {
			continue
		}
		res, err := sim.Microbench(sim.MicrobenchConfig{
			Machine: cfg.Machine,
			Service: svc,
			Demand:  demand,
			Cores:   cores,
			Seed:    cfg.Seed,
			Warmup:  cfg.Warmup,
			Measure: cfg.Measure,
		})
		if err != nil {
			return Character{}, err
		}
		ch.Points = append(ch.Points, ScalingPoint{Cores: cores, OpsPerSec: res.OpsPerSec})
	}
	sort.Slice(ch.Points, func(i, j int) bool { return ch.Points[i].Cores < ch.Points[j].Cores })
	fit, err := FitUSL(ch.Points)
	if err != nil {
		return Character{}, err
	}
	ch.Fit = fit

	// Measured efficiency at 16 cores (or the largest measured).
	base := ch.Points[0]
	ref := ch.Points[len(ch.Points)-1]
	for _, p := range ch.Points {
		if p.Cores == 16 {
			ref = p
		}
	}
	ch.Efficiency16 = ref.OpsPerSec / (float64(ref.Cores) / float64(base.Cores) * base.OpsPerSec)
	switch {
	case ch.Efficiency16 >= 0.70:
		ch.Class = ScalesLinearly
	case ch.Efficiency16 >= 0.35:
		ch.Class = ScalesPartially
	default:
		ch.Class = SerialLimited
	}

	// Recommended allotment: stop doubling when the gain drops under 5 %.
	rec := 1
	for n := 1; n*2 <= cfg.Machine.NumCores(); n *= 2 {
		gain := fit.Throughput(float64(n*2))/fit.Throughput(float64(n)) - 1
		if gain < 0.05 {
			break
		}
		rec = n * 2
	}
	ch.RecommendedCores = rec
	return ch, nil
}

// CharacterizeAll characterizes every service except the registry (which
// carries no request traffic).
func CharacterizeAll(cfg CharacterizeConfig) (map[sim.Service]Character, error) {
	out := map[sim.Service]Character{}
	for _, svc := range sim.AllServices() {
		if svc == sim.Registry {
			continue
		}
		ch, err := CharacterizeService(svc, cfg)
		if err != nil {
			return nil, fmt.Errorf("characterizing %v: %w", svc, err)
		}
		out[svc] = ch
	}
	return out, nil
}

// AnalyticShares computes each service's share of total CPU demand from
// the request specs and the workload's stationary request mix — the input
// the placement builders size allotments with.
func AnalyticShares(specs map[workload.Request]sim.RequestSpec, mix [workload.NumRequests]float64) placement.Shares {
	shares := placement.Shares{}
	for r, frac := range mix {
		spec, ok := specs[workload.Request(r)]
		if !ok {
			continue
		}
		for _, svc := range sim.AllServices() {
			shares[svc] += frac * float64(spec.DemandOn(svc))
		}
	}
	// The registry serves no requests but needs a sliver for heartbeats.
	shares[sim.Registry] = 0.005 * sumShares(shares)
	return shares.Normalize()
}

func sumShares(s placement.Shares) float64 {
	total := 0.0
	for _, v := range s {
		total += v
	}
	return total
}

// WorkloadShares derives AnalyticShares for a workload profile by sampling
// its request mix.
func WorkloadShares(profile *workload.Profile, seed int64) placement.Shares {
	mix := profile.Mix(rand.New(rand.NewSource(seed)), 4000)
	return AnalyticShares(sim.DefaultRequestSpecs(), mix)
}
