package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/placement"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/workload"
)

func TestFitUSLRecoversKnownLaw(t *testing.T) {
	truth := USLFit{Lambda: 1000, Sigma: 0.08, Kappa: 0.0005}
	var pts []ScalingPoint
	for _, n := range []int{1, 2, 4, 8, 16, 32, 64} {
		pts = append(pts, ScalingPoint{Cores: n, OpsPerSec: truth.Throughput(float64(n))})
	}
	fit, err := FitUSL(pts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Lambda-truth.Lambda)/truth.Lambda > 0.01 {
		t.Fatalf("λ = %v, want ~%v", fit.Lambda, truth.Lambda)
	}
	if math.Abs(fit.Sigma-truth.Sigma) > 0.005 {
		t.Fatalf("σ = %v, want ~%v", fit.Sigma, truth.Sigma)
	}
	if math.Abs(fit.Kappa-truth.Kappa) > 0.0001 {
		t.Fatalf("κ = %v, want ~%v", fit.Kappa, truth.Kappa)
	}
	if fit.RMSRel > 0.01 {
		t.Fatalf("exact data should fit with ~0 error, rms %v", fit.RMSRel)
	}
}

func TestFitUSLClampsNegatives(t *testing.T) {
	// Perfectly linear data: σ and κ must come out 0, not negative.
	var pts []ScalingPoint
	for _, n := range []int{1, 2, 4, 8} {
		pts = append(pts, ScalingPoint{Cores: n, OpsPerSec: 100 * float64(n)})
	}
	fit, err := FitUSL(pts)
	if err != nil {
		t.Fatal(err)
	}
	if fit.Sigma < 0 || fit.Kappa < 0 {
		t.Fatalf("negative coefficients: %+v", fit)
	}
	if math.IsInf(fit.PeakCores(), 1) == false && fit.Kappa > 0 {
		t.Fatal("linear fit should not peak")
	}
}

func TestFitUSLValidation(t *testing.T) {
	cases := [][]ScalingPoint{
		nil,
		{{1, 100}, {2, 150}}, // too few
		{{1, 100}, {2, 150}, {2, 160}},
		{{0, 100}, {2, 150}, {4, 200}},
		{{1, -5}, {2, 150}, {4, 200}},
	}
	for i, pts := range cases {
		if _, err := FitUSL(pts); err == nil {
			t.Errorf("case %d: bad points accepted", i)
		}
	}
}

func TestUSLDerivedQuantities(t *testing.T) {
	f := USLFit{Lambda: 100, Sigma: 0.1, Kappa: 0.001}
	if got, want := f.PeakCores(), math.Sqrt(0.9/0.001); math.Abs(got-want) > 1e-9 {
		t.Fatalf("PeakCores = %v, want %v", got, want)
	}
	if got := f.AsymptoteOps(); math.Abs(got-1000) > 1e-9 {
		t.Fatalf("Asymptote = %v, want 1000", got)
	}
	if f.Efficiency(1) != 1 {
		t.Fatal("Efficiency(1) must be 1")
	}
	if f.Efficiency(16) >= 1 {
		t.Fatal("Efficiency must drop below 1 under contention")
	}
	if (USLFit{Lambda: 100}).AsymptoteOps() != math.Inf(1) {
		t.Fatal("σ=0 asymptote must be +Inf")
	}
	if f.Throughput(0) != 0 || f.Efficiency(0) != 0 {
		t.Fatal("zero cores edge cases wrong")
	}
	if f.String() == "" {
		t.Fatal("empty String")
	}
}

// Property: fitted curve is non-negative and evaluates finitely over the
// measured domain for arbitrary positive data.
func TestPropertyFitStable(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) < 4 {
			return true
		}
		if len(raw) > 12 {
			raw = raw[:12]
		}
		pts := make([]ScalingPoint, len(raw))
		for i, r := range raw {
			pts[i] = ScalingPoint{Cores: i + 1, OpsPerSec: float64(r%5000) + 1}
		}
		fit, err := FitUSL(pts)
		if err != nil {
			return true // rejection is fine; instability is not
		}
		for n := 1.0; n <= 64; n *= 2 {
			x := fit.Throughput(n)
			if math.IsNaN(x) || math.IsInf(x, 0) || x < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestCharacterizeSeparatesServices(t *testing.T) {
	mach := topology.Rome1S()
	cfg := CharacterizeConfig{Machine: mach, CoreCounts: []int{1, 2, 4, 8, 16}, Seed: 1}
	auth, err := CharacterizeService(sim.Auth, cfg)
	if err != nil {
		t.Fatal(err)
	}
	pers, err := CharacterizeService(sim.Persistence, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if auth.Efficiency16 <= pers.Efficiency16 {
		t.Fatalf("auth efficiency (%.2f) should beat persistence (%.2f)",
			auth.Efficiency16, pers.Efficiency16)
	}
	if auth.Class > pers.Class {
		t.Fatalf("auth classified %v, persistence %v — ordering wrong", auth.Class, pers.Class)
	}
	if pers.Fit.Sigma <= auth.Fit.Sigma {
		t.Fatalf("persistence σ (%.4f) should exceed auth σ (%.4f)", pers.Fit.Sigma, auth.Fit.Sigma)
	}
	if pers.RecommendedCores >= 32 {
		t.Fatalf("persistence recommended %d cores — should stop early", pers.RecommendedCores)
	}
	if auth.RecommendedCores <= pers.RecommendedCores {
		t.Fatalf("auth should merit more cores than persistence (%d vs %d)",
			auth.RecommendedCores, pers.RecommendedCores)
	}
}

func TestCharacterizeAllCoversServices(t *testing.T) {
	mach := topology.Rome1S()
	all, err := CharacterizeAll(CharacterizeConfig{
		Machine: mach, CoreCounts: []int{1, 2, 4, 8}, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != sim.NumServices-1 {
		t.Fatalf("characterized %d services, want %d", len(all), sim.NumServices-1)
	}
	if _, ok := all[sim.Registry]; ok {
		t.Fatal("registry should be skipped")
	}
}

func TestCharacterizeValidation(t *testing.T) {
	if _, err := CharacterizeService(sim.Auth, CharacterizeConfig{}); err == nil {
		t.Fatal("missing machine accepted")
	}
}

func TestScalingClassString(t *testing.T) {
	if ScalesLinearly.String() != "linear" || SerialLimited.String() != "serial-limited" {
		t.Fatal("class names wrong")
	}
	if ScalingClass(9).String() == "" {
		t.Fatal("unknown class should render")
	}
}

func TestAnalyticSharesSaneAndNormalized(t *testing.T) {
	mix := workload.Browse().Mix(quickRand(3), 3000)
	shares := AnalyticShares(sim.DefaultRequestSpecs(), mix)
	sum := 0.0
	for _, v := range shares {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("shares sum to %v", sum)
	}
	// WebUI serves every request: it must have the largest share.
	for svc, v := range shares {
		if svc != sim.WebUI && v > shares[sim.WebUI] {
			t.Fatalf("%v share (%.3f) exceeds webui (%.3f)", svc, v, shares[sim.WebUI])
		}
	}
	if shares[sim.Registry] <= 0 || shares[sim.Registry] > 0.02 {
		t.Fatalf("registry share %.4f outside (0, 0.02]", shares[sim.Registry])
	}
}

func TestMeanDemand(t *testing.T) {
	mix := workload.Browse().Mix(quickRand(4), 3000)
	specs := sim.DefaultRequestSpecs()
	if MeanDemand(sim.Persistence, specs, mix) <= 0 {
		t.Fatal("persistence mean demand should be positive")
	}
	if MeanDemand(sim.Registry, specs, mix) != 0 {
		t.Fatal("registry mean demand should be zero")
	}
}

func TestOptimizePicksCCDOnRome(t *testing.T) {
	plan, err := Optimize(topology.Rome1S(), nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if plan.CellLevel != placement.CellPerCCD {
		t.Fatalf("cell level = %v, want ccd", plan.CellLevel)
	}
	if !plan.RouteNearest {
		t.Fatal("optimized plan must use nearest routing")
	}
	if err := plan.Deployment.Validate(topology.Rome1S()); err != nil {
		t.Fatal(err)
	}
	if len(plan.Rationale) == 0 {
		t.Fatal("plan should explain itself")
	}
	if plan.Deployment.Name != "optimized" {
		t.Fatalf("deployment name %q", plan.Deployment.Name)
	}
}

func TestOptimizeFallsBackOnCoarseCells(t *testing.T) {
	// A machine with 2-core CCDs: per-CCD cells can't host 5 services, so
	// the optimizer must coarsen to NUMA (= socket here).
	tiny := topology.MustNew(topology.Config{
		Name: "tiny", Sockets: 1, CCDsPerSocket: 4, CCXsPerCCD: 1,
		CoresPerCCX: 2, ThreadsPerCore: 2, NUMAPerSocket: 1,
		L3PerCCX: 16 << 20, BaseGHz: 2, BoostGHz: 3,
	})
	plan, err := Optimize(tiny, workload.Buy(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if plan.CellLevel == placement.CellPerCCD {
		t.Fatal("optimizer chose undersized CCD cells")
	}
	if err := plan.Deployment.Validate(tiny); err != nil {
		t.Fatal(err)
	}
}

func TestBaselinePlans(t *testing.T) {
	mach := topology.Rome1S()
	plans := BaselinePlans(mach, workload.Browse(), 1)
	for _, name := range []string{"os-default", "tuned", "packed"} {
		plan, ok := plans[name]
		if !ok {
			t.Fatalf("missing plan %q", name)
		}
		if err := plan.Deployment.Validate(mach); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if plan.RouteNearest {
			t.Fatalf("%s must not use nearest routing", name)
		}
	}
}

// quickRand returns a seeded random stream for workload sampling.
func quickRand(seed int64) workload.Rand {
	return rand.New(rand.NewSource(seed))
}
