package core

import (
	"fmt"

	"repro/internal/placement"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/workload"
)

// Plan is the optimizer's output: a deployment plus the engine settings it
// assumes.
type Plan struct {
	Deployment sim.Deployment
	// RouteNearest must be set on sim.Config for the plan to behave as
	// designed (cell-local RPC).
	RouteNearest bool
	// CellLevel records the partition granularity chosen.
	CellLevel placement.CellLevel
	// Shares are the demand shares the plan was sized with.
	Shares placement.Shares
	// Rationale lists human-readable decisions, for reports.
	Rationale []string
}

// Optimize builds the topology-aware deployment for a machine and
// workload, applying the paper's two insights:
//
//  1. Scaling properties: serialization-limited services are replicated
//     (one replica per cell) instead of being given wider allotments.
//  2. Topology: each cell is a topological unit (CCD, NUMA node, or
//     socket) chosen so a full replica set fits, giving every replica a
//     private L3 neighbourhood, local memory, and short RPC paths.
func Optimize(mach *topology.Machine, profile *workload.Profile, seed int64) (Plan, error) {
	if mach == nil {
		return Plan{}, fmt.Errorf("core: Optimize requires a machine")
	}
	if profile == nil {
		profile = workload.Browse()
	}
	shares := WorkloadShares(profile, seed)

	plan := Plan{Shares: shares, RouteNearest: true}
	plan.Rationale = append(plan.Rationale,
		fmt.Sprintf("demand shares from %q mix: %s", profile.Name, formatShares(shares)))

	// Pick the finest cell granularity that can host one replica of each
	// request-serving service (5 of them).
	const servicesPerCell = 5
	levels := []placement.CellLevel{placement.CellPerCCD, placement.CellPerNUMA, placement.CellPerSocket}
	coresPerCell := []int{
		mach.NumCores() / mach.NumCCDs(),
		mach.NumCores() / mach.NumNUMA(),
		mach.NumCores() / mach.NumSockets(),
	}
	chosen := -1
	for i, level := range levels {
		if coresPerCell[i] >= servicesPerCell {
			chosen = i
			plan.CellLevel = level
			break
		}
	}
	if chosen < 0 {
		return Plan{}, fmt.Errorf("core: no cell granularity of %s fits %d services", mach.Name(), servicesPerCell)
	}
	plan.Rationale = append(plan.Rationale,
		fmt.Sprintf("cell granularity %v: %d cells of %d cores", plan.CellLevel,
			mach.NumCores()/coresPerCell[chosen], coresPerCell[chosen]))

	d, err := placement.Cells(mach, shares, plan.CellLevel)
	if err != nil {
		return Plan{}, err
	}
	d.Name = "optimized"
	plan.Deployment = d
	plan.Rationale = append(plan.Rationale,
		"one replica of every service per cell (serialization-limited services gain a lock split per cell)",
		"memory homed on each cell's NUMA node; nearest-replica routing keeps RPC inside the cell")
	return plan, nil
}

func formatShares(s placement.Shares) string {
	out := ""
	for _, svc := range sim.AllServices() {
		if out != "" {
			out += " "
		}
		out += fmt.Sprintf("%s=%.2f", svc, s[svc])
	}
	return out
}

// BaselinePlans returns the comparison configurations of experiment E7 for
// a machine: the untuned default, the performance-tuned (replicated but
// unpinned) baseline, and naive packed pinning.
func BaselinePlans(mach *topology.Machine, profile *workload.Profile, seed int64) map[string]Plan {
	shares := WorkloadShares(profile, seed)
	return map[string]Plan{
		"os-default": {Deployment: placement.OSDefault(mach), Shares: shares},
		"tuned":      {Deployment: placement.Tuned(mach, shares, 0), Shares: shares},
		"packed":     {Deployment: placement.Packed(mach, shares, 0), Shares: shares},
	}
}
