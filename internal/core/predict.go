package core

import (
	"fmt"
	"math/rand"

	"repro/internal/mva"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/workload"
)

// Prediction is an analytic capacity estimate for a deployment.
type Prediction struct {
	// PeakRequestsPerSec is the asymptotic throughput bound.
	PeakRequestsPerSec float64
	// Bottleneck names the limiting station ("persistence/serial",
	// "webui/cpu", ...).
	Bottleneck string
	// Network is the underlying queueing model, for further analysis.
	Network mva.Network
}

// PredictPeak builds a closed queueing model of a deployment — one CPU
// station per instance (servers ≈ SMT-adjusted core count) plus one
// serial station per instance of a serialization-limited service — and
// returns the bottleneck throughput bound. It lets the optimizer reason
// about a placement without simulating it; accuracy versus the simulator
// is established in core's tests.
func PredictPeak(mach *topology.Machine, d sim.Deployment, profile *workload.Profile, seed int64) (Prediction, error) {
	if err := d.Validate(mach); err != nil {
		return Prediction{}, err
	}
	if profile == nil {
		profile = workload.Browse()
	}
	mix := profile.Mix(rand.New(rand.NewSource(seed)), 4000)
	specs := sim.DefaultRequestSpecs()
	profiles := sim.DefaultProfiles()

	// Per-request demand on each service, mix weighted.
	demand := map[sim.Service]float64{}
	for r, frac := range mix {
		spec, ok := specs[workload.Request(r)]
		if !ok {
			continue
		}
		for _, svc := range sim.AllServices() {
			demand[svc] += frac * float64(spec.DemandOn(svc)) / 1e9
		}
	}

	// The effective parallelism of an instance: physical cores scaled by
	// the SMT yield of the second thread (2 × 0.62 per core), matching
	// simcpu's default parameters.
	const smtYield = 1.24
	effServers := func(aff topology.CPUSet) int {
		cores := map[int]bool{}
		count := func(id int) { cores[mach.CPU(id).Core] = true }
		if aff.Empty() {
			for id := 0; id < mach.NumCPUs(); id++ {
				count(id)
			}
		} else {
			aff.ForEach(count)
		}
		n := int(float64(len(cores)) * smtYield)
		if n < 1 {
			n = 1
		}
		return n
	}

	net := mva.Network{ThinkTime: float64(profile.ThinkMedian) / 1e9}
	replicas := map[sim.Service]int{}
	for _, inst := range d.Instances {
		replicas[inst.Service]++
	}
	for i, inst := range d.Instances {
		svc := inst.Service
		perInstance := demand[svc] / float64(replicas[svc])
		if perInstance <= 0 {
			continue
		}
		net.Stations = append(net.Stations, mva.Station{
			Name:    fmt.Sprintf("%s[%d]/cpu", svc, i),
			Demand:  perInstance,
			Servers: effServers(inst.Affinity),
		})
		if f := profiles[svc].SerialFrac; f > 0 {
			net.Stations = append(net.Stations, mva.Station{
				Name:    fmt.Sprintf("%s[%d]/serial", svc, i),
				Demand:  perInstance * f,
				Servers: 1,
			})
		}
	}

	peak, err := mva.MaxThroughput(net)
	if err != nil {
		return Prediction{}, err
	}
	pred := Prediction{PeakRequestsPerSec: peak, Network: net}
	// Identify the bottleneck station.
	var worst float64
	for _, st := range net.Stations {
		if d := st.Demand / float64(st.Servers); d > worst {
			worst = d
			pred.Bottleneck = st.Name
		}
	}
	return pred, nil
}
