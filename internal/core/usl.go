// Package core implements the paper's contribution: characterizing how
// each microservice scales up inside one server, and exploiting that
// characterization together with processor-topology knowledge to build the
// deployment that delivers the paper's headline gains (+22 % throughput,
// −18 % latency over a performance-tuned baseline).
//
// The package provides three layers:
//
//   - USL fitting (FitUSL): quantify a service's scaling curve with the
//     Universal Scalability Law, X(n) = λn / (1 + σ(n−1) + κn(n−1)).
//   - Characterization (CharacterizeService / CharacterizeAll): measure
//     isolated scaling curves on the simulated server and classify each
//     service as scalable or serialization-limited.
//   - Optimization (AnalyticShares / Optimize): derive per-service CPU
//     demand shares from the workload and emit the topology-aware cell
//     deployment plus the routing mode it requires.
package core

import (
	"fmt"
	"math"
)

// ScalingPoint is one measured point of a scaling curve.
type ScalingPoint struct {
	// Cores is the physical-core allotment.
	Cores int
	// OpsPerSec is the measured saturated throughput at that allotment.
	OpsPerSec float64
}

// USLFit holds fitted Universal Scalability Law coefficients:
//
//	X(n) = Lambda·n / (1 + Sigma·(n−1) + Kappa·n·(n−1))
//
// Lambda is single-core throughput, Sigma the contention (serial) fraction,
// Kappa the coherence penalty.
type USLFit struct {
	Lambda float64
	Sigma  float64
	Kappa  float64
	// RMSRel is the root-mean-square relative error of the fit.
	RMSRel float64
}

// Throughput evaluates the fitted law at n cores.
func (f USLFit) Throughput(n float64) float64 {
	if n <= 0 {
		return 0
	}
	return f.Lambda * n / (1 + f.Sigma*(n-1) + f.Kappa*n*(n-1))
}

// PeakCores returns the core count at which the fitted curve peaks
// (+Inf when it never peaks, i.e. Kappa == 0).
func (f USLFit) PeakCores() float64 {
	if f.Kappa <= 0 {
		return math.Inf(1)
	}
	return math.Sqrt((1 - f.Sigma) / f.Kappa)
}

// AsymptoteOps returns the throughput ceiling 1/(σ·perOpTime) implied by
// contention: lim X(n) = Lambda/Sigma for Kappa = 0. Infinite when σ = 0.
func (f USLFit) AsymptoteOps() float64 {
	if f.Sigma <= 0 {
		return math.Inf(1)
	}
	return f.Lambda / f.Sigma
}

// Efficiency returns X(n)/(n·X(1)): the fraction of linear scaling
// retained at n cores.
func (f USLFit) Efficiency(n float64) float64 {
	if n <= 0 {
		return 0
	}
	return f.Throughput(n) / (n * f.Throughput(1))
}

func (f USLFit) String() string {
	return fmt.Sprintf("USL{λ=%.1f ops/s·core, σ=%.4f, κ=%.6f, rms=%.1f%%}",
		f.Lambda, f.Sigma, f.Kappa, f.RMSRel*100)
}

// FitUSL fits the law to measured points by linear least squares on the
// transformed model n/X(n) = a + b·(n−1) + c·n·(n−1), with a = 1/λ,
// b = σ/λ, c = κ/λ. Sigma and Kappa are clamped to be non-negative (a
// negative solution means the data shows super-linear noise, which the law
// cannot represent). At least three distinct core counts are required.
func FitUSL(points []ScalingPoint) (USLFit, error) {
	distinct := map[int]bool{}
	for _, p := range points {
		if p.Cores <= 0 {
			return USLFit{}, fmt.Errorf("core: scaling point with non-positive cores %d", p.Cores)
		}
		if p.OpsPerSec <= 0 {
			return USLFit{}, fmt.Errorf("core: scaling point with non-positive throughput %v at %d cores", p.OpsPerSec, p.Cores)
		}
		distinct[p.Cores] = true
	}
	if len(distinct) < 3 {
		return USLFit{}, fmt.Errorf("core: need ≥3 distinct core counts to fit USL, have %d", len(distinct))
	}

	// Build normal equations for y = a + b·u + c·v, u = n−1, v = n(n−1).
	var s [3][4]float64
	for _, p := range points {
		n := float64(p.Cores)
		y := n / p.OpsPerSec
		row := [3]float64{1, n - 1, n * (n - 1)}
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				s[i][j] += row[i] * row[j]
			}
			s[i][3] += row[i] * y
		}
	}
	coef, ok := solve3(s)
	if !ok {
		return USLFit{}, fmt.Errorf("core: singular system fitting USL")
	}
	a, b, c := coef[0], coef[1], coef[2]
	if a <= 0 {
		return USLFit{}, fmt.Errorf("core: non-physical USL fit (1/λ = %v)", a)
	}
	fit := USLFit{Lambda: 1 / a, Sigma: b / a, Kappa: c / a}
	if fit.Sigma < 0 {
		fit.Sigma = 0
	}
	if fit.Kappa < 0 {
		fit.Kappa = 0
	}

	// Quantify fit quality.
	var sq float64
	for _, p := range points {
		pred := fit.Throughput(float64(p.Cores))
		rel := (pred - p.OpsPerSec) / p.OpsPerSec
		sq += rel * rel
	}
	fit.RMSRel = math.Sqrt(sq / float64(len(points)))
	return fit, nil
}

// solve3 solves a 3×3 linear system given as an augmented matrix, by
// Gaussian elimination with partial pivoting.
func solve3(m [3][4]float64) ([3]float64, bool) {
	for col := 0; col < 3; col++ {
		// Pivot.
		pivot := col
		for r := col + 1; r < 3; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(m[pivot][col]) < 1e-12 {
			return [3]float64{}, false
		}
		m[col], m[pivot] = m[pivot], m[col]
		for r := 0; r < 3; r++ {
			if r == col {
				continue
			}
			factor := m[r][col] / m[col][col]
			for c := col; c < 4; c++ {
				m[r][c] -= factor * m[col][c]
			}
		}
	}
	var out [3]float64
	for i := 0; i < 3; i++ {
		out[i] = m[i][3] / m[i][i]
	}
	return out, true
}
