package core

import (
	"strings"
	"testing"

	"repro/internal/desim"
	"repro/internal/placement"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/workload"
)

func TestPredictPeakIdentifiesSerialBottleneck(t *testing.T) {
	mach := topology.Rome1S()
	pred, err := PredictPeak(mach, placement.OSDefault(mach), nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	// One persistence instance: its serial station must be the limit.
	if !strings.Contains(pred.Bottleneck, "persistence") || !strings.Contains(pred.Bottleneck, "serial") {
		t.Fatalf("bottleneck = %q, want persistence serial", pred.Bottleneck)
	}
	if pred.PeakRequestsPerSec <= 0 {
		t.Fatal("no peak")
	}
}

func TestPredictPeakOrdersDeployments(t *testing.T) {
	mach := topology.Rome1S()
	shares := placement.DefaultShares()
	def, err := PredictPeak(mach, placement.OSDefault(mach), nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	tuned, err := PredictPeak(mach, placement.Tuned(mach, shares, 0), nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if tuned.PeakRequestsPerSec <= def.PeakRequestsPerSec {
		t.Fatalf("tuned peak (%.0f) should exceed os-default (%.0f)",
			tuned.PeakRequestsPerSec, def.PeakRequestsPerSec)
	}
}

// The analytic bound must agree with the simulator's measured saturation
// for the serialization-limited default deployment: the lock ceiling is a
// distribution-free bound, so agreement should be tight-ish despite the
// simulator's extra mechanisms (cache CPI slows the serial section, which
// the predictor approximates with nominal demands).
func TestPredictPeakMatchesSimulatedSaturation(t *testing.T) {
	mach := topology.Rome1S()
	d := placement.OSDefault(mach)
	pred, err := PredictPeak(mach, d, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	profile := workload.Browse()
	profile.ThinkMedian /= 10
	res, err := sim.Run(sim.Config{
		Machine: mach, Deployment: d, Workload: profile,
		Users: 2000, Seed: 1,
		Warmup: 2 * desim.Second, Measure: 6 * desim.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	ratio := res.Throughput / pred.PeakRequestsPerSec
	// The simulator runs the serial section with CPI > 1 and lognormal
	// demands, so it saturates below the nominal analytic bound — but
	// within a factor reflecting those multipliers.
	if ratio < 0.5 || ratio > 1.1 {
		t.Fatalf("sim saturation %.0f vs predicted %.0f (ratio %.2f) outside [0.5, 1.1]",
			res.Throughput, pred.PeakRequestsPerSec, ratio)
	}
}

func TestPredictPeakRejectsBadDeployment(t *testing.T) {
	mach := topology.Rome1S()
	if _, err := PredictPeak(mach, sim.Deployment{}, nil, 1); err == nil {
		t.Fatal("empty deployment accepted")
	}
}
