package sim

import (
	"strings"
	"testing"

	"repro/internal/desim"
	"repro/internal/topology"
)

func TestRunDebugRendersInstances(t *testing.T) {
	out, err := RunDebug(smallConfig(30, 4))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"throughput", "inst", "webui", "registry", "workers="} {
		if !strings.Contains(out, want) {
			t.Fatalf("debug output missing %q:\n%.300s", want, out)
		}
	}
	if _, err := RunDebug(Config{}); err == nil {
		t.Fatal("bad config accepted")
	}
}

func TestClientLatencyAddsToResponseTime(t *testing.T) {
	slow := smallConfig(20, 5)
	slow.ClientLatency = 20 * desim.Millisecond
	fast := smallConfig(20, 5)
	fast.ClientLatency = desim.Millisecond

	slowRes, err := Run(slow)
	if err != nil {
		t.Fatal(err)
	}
	fastRes, err := Run(fast)
	if err != nil {
		t.Fatal(err)
	}
	// Two extra ~19ms network legs must be visible in the median.
	gap := slowRes.Latency.P50 - fastRes.Latency.P50
	if gap < int64(30*desim.Millisecond) {
		t.Fatalf("client latency not reflected: gap %.1fms", float64(gap)/1e6)
	}
}

func TestPerRequestHistogramsPopulated(t *testing.T) {
	res, err := Run(smallConfig(60, 6))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerRequest) < 4 {
		t.Fatalf("only %d request types measured", len(res.PerRequest))
	}
	var total int64
	for _, snap := range res.PerRequest {
		total += snap.Count
	}
	if total != res.Latency.Count {
		t.Fatalf("per-request counts (%d) don't sum to total (%d)", total, res.Latency.Count)
	}
}

func TestRouteNearestPrefersCellMates(t *testing.T) {
	// Two-cell deployment on the small machine: webui of CCX0 should send
	// its persistence ops to the CCX0 persistence replica under nearest
	// routing. We detect this via per-instance served counts: with
	// round-robin the split is even regardless of caller; with nearest it
	// stays even too (symmetric cells) — so instead compare throughput:
	// nearest routing on a cross-socket machine must not be slower.
	mach := topology.Rome2S()
	d := Deployment{Name: "two-cell"}
	for cell := 0; cell < 2; cell++ {
		set := mach.CPUsOfSocket(cell)
		for _, s := range []Service{WebUI, Auth, Persistence, Recommender, Image} {
			d.Instances = append(d.Instances, InstanceSpec{
				Service: s, Affinity: set.TakeN(32), Workers: 64, HomeNUMA: cell,
			})
		}
	}
	d.Instances = append(d.Instances, InstanceSpec{
		Service: Registry, Affinity: topology.NewCPUSet(0, 128), Workers: 4, HomeNUMA: 0,
	})
	run := func(nearest bool) Result {
		res, err := Run(Config{
			Machine: mach, Deployment: d, Users: 2500, Seed: 3,
			Warmup: desim.Second, Measure: 4 * desim.Second, RouteNearest: nearest,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	rr := run(false)
	nearest := run(true)
	if nearest.Latency.P50 > rr.Latency.P50 {
		t.Fatalf("nearest routing slower at median: %.2fms vs %.2fms",
			float64(nearest.Latency.P50)/1e6, float64(rr.Latency.P50)/1e6)
	}
}
