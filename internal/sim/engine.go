package sim

import (
	"fmt"

	"repro/internal/desim"
	"repro/internal/memmodel"
	"repro/internal/metrics"
	"repro/internal/simcpu"
	"repro/internal/simnet"
	"repro/internal/topology"
	"repro/internal/workload"
)

// Config assembles one simulation run.
type Config struct {
	Machine    *topology.Machine
	Deployment Deployment
	// Workload is the user-behaviour profile; nil means workload.Browse().
	Workload *workload.Profile
	// Users is the closed-loop population. Exactly one of Users and
	// SessionRate must be set.
	Users int
	// SessionRate, when positive, switches to partly-open load: new user
	// sessions arrive as a Poisson process at this rate (sessions/second),
	// run to completion with think times, and leave. Offered load is then
	// independent of the system's speed — the classic setup for
	// latency-versus-load curves.
	SessionRate float64
	// Seed keys every random stream of the run.
	Seed int64
	// Warmup and Measure bound the run; stats cover only Measure.
	Warmup  desim.Duration
	Measure desim.Duration
	// ClientLatency is the one-way client↔server network latency
	// (default 100 µs).
	ClientLatency desim.Duration

	// CPU, Mem, Net override hardware model parameters (zero values mean
	// defaults).
	CPU simcpu.Params
	Mem memmodel.Params
	Net simnet.Params

	// Profiles and Requests override the service/request models (nil
	// means defaults).
	Profiles map[Service]ServiceProfile
	Requests map[workload.Request]RequestSpec

	// RouteNearest makes callers prefer the topologically closest replica
	// of a callee service (ties broken round-robin) instead of global
	// round-robin. This is the service-mesh locality routing the
	// cell-based optimized deployments rely on.
	RouteNearest bool
}

// withDefaults fills zero-valued fields.
func (c Config) withDefaults() (Config, error) {
	if c.Machine == nil {
		return c, fmt.Errorf("sim: Config.Machine is required")
	}
	if (c.Users <= 0) == (c.SessionRate <= 0) {
		return c, fmt.Errorf("sim: exactly one of Config.Users (%d) and Config.SessionRate (%v) must be positive",
			c.Users, c.SessionRate)
	}
	if c.Workload == nil {
		c.Workload = workload.Browse()
	}
	if err := c.Workload.Validate(); err != nil {
		return c, err
	}
	if c.Warmup < 0 || c.Measure <= 0 {
		return c, fmt.Errorf("sim: warmup/measure durations invalid (%v, %v)", c.Warmup, c.Measure)
	}
	if c.ClientLatency == 0 {
		c.ClientLatency = 100 * desim.Microsecond
	}
	if c.CPU == (simcpu.Params{}) {
		c.CPU = simcpu.DefaultParams()
	}
	if c.Mem == (memmodel.Params{}) {
		c.Mem = memmodel.DefaultParams()
	}
	if c.Net == (simnet.Params{}) {
		c.Net = simnet.DefaultParams()
	}
	if c.Profiles == nil {
		c.Profiles = DefaultProfiles()
	}
	if c.Requests == nil {
		c.Requests = DefaultRequestSpecs()
	}
	for _, spec := range c.Requests {
		if err := spec.Validate(); err != nil {
			return c, err
		}
	}
	if err := c.Deployment.Validate(c.Machine); err != nil {
		return c, err
	}
	return c, nil
}

// instance is the runtime state of one deployed service instance.
type instance struct {
	id     int
	spec   InstanceSpec
	prof   ServiceProfile
	region *memmodel.Region

	freeWorkers int
	waiters     []func(release func())
	running     int // segments currently on-CPU
	lock        serialLock

	busyNS       int64
	served       int64
	queuePeak    int
	lockWaitNS   int64
	workerWaitNS int64
}

// Engine runs one configured simulation.
type Engine struct {
	cfg    Config
	eng    *desim.Engine
	proc   *simcpu.Processor
	mem    *memmodel.Model
	fabric *simnet.Fabric

	instances []*instance
	byService [NumServices][]*instance
	rr        [NumServices]int

	// netLat[a][b] and netLevel[a][b] are precomputed instance-pair costs.
	netLat   [][]desim.Duration
	netLevel [][]topology.Level

	demandRNG desim.RNG
	thinkRNG  desim.RNG
	walkRNG   desim.RNG

	measuring bool
	histAll   metrics.Histogram
	histByReq [workload.NumRequests]metrics.Histogram
	tput      metrics.Throughput
	sessions  metrics.Throughput
}

// NewEngine validates the config and builds the simulation (without
// running it).
func NewEngine(cfg Config) (*Engine, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	e := &Engine{cfg: cfg, eng: desim.New()}
	if e.proc, err = simcpu.New(e.eng, cfg.Machine, cfg.CPU); err != nil {
		return nil, err
	}
	if e.mem, err = memmodel.New(cfg.Machine, cfg.Mem); err != nil {
		return nil, err
	}
	if e.fabric, err = simnet.NewFabric(cfg.Machine, cfg.Net); err != nil {
		return nil, err
	}
	pool := desim.NewRNGPool(cfg.Seed)
	e.demandRNG = pool.Stream("demand")
	e.thinkRNG = pool.Stream("think")
	e.walkRNG = pool.Stream("walk")

	for i, spec := range cfg.Deployment.Instances {
		prof, ok := cfg.Profiles[spec.Service]
		if !ok {
			return nil, fmt.Errorf("sim: no profile for service %v", spec.Service)
		}
		region, err := e.mem.AddRegion(prof.WSBytes, spec.HomeNUMA, spec.Affinity)
		if err != nil {
			return nil, err
		}
		inst := &instance{
			id: i, spec: spec, prof: prof, region: region,
			freeWorkers: spec.Workers,
		}
		e.instances = append(e.instances, inst)
		e.byService[spec.Service] = append(e.byService[spec.Service], inst)
	}
	e.precomputeNetCosts()
	return e, nil
}

// precomputeNetCosts caches instance-pair latency and relation level,
// averaging over one representative CPU per CCX of the caller's affinity.
func (e *Engine) precomputeNetCosts() {
	mach := e.cfg.Machine
	n := len(e.instances)
	e.netLat = make([][]desim.Duration, n)
	e.netLevel = make([][]topology.Level, n)

	// Representative caller CPUs per instance: one per CCX of affinity.
	reps := make([][]int, n)
	for i, inst := range e.instances {
		seen := map[int]bool{}
		add := func(id int) {
			ccx := mach.CPU(id).CCX
			if !seen[ccx] {
				seen[ccx] = true
				reps[i] = append(reps[i], id)
			}
		}
		if inst.spec.Affinity.Empty() {
			for id := 0; id < mach.NumCPUs(); id++ {
				add(id)
			}
		} else {
			inst.spec.Affinity.ForEach(add)
		}
	}

	for a := range e.instances {
		e.netLat[a] = make([]desim.Duration, n)
		e.netLevel[a] = make([]topology.Level, n)
		for b := range e.instances {
			var sum desim.Duration
			for _, cpu := range reps[a] {
				sum += e.fabric.AvgLatency(cpu, e.instances[b].spec.Affinity)
			}
			avg := sum / desim.Duration(len(reps[a]))
			e.netLat[a][b] = avg
			// Classify the average back onto a level for CPU costs.
			lvl := topology.LevelMachine
			for l := topology.LevelThread; l <= topology.LevelMachine; l++ {
				if e.fabric.Params().Latency[l] >= avg {
					lvl = l
					break
				}
			}
			e.netLevel[a][b] = lvl
		}
	}
}

// pick returns the next replica of a service, round-robin. Used for
// client→WebUI routing, where the caller has no topology position.
func (e *Engine) pick(s Service) *instance {
	list := e.byService[s]
	inst := list[e.rr[s]%len(list)]
	e.rr[s]++
	return inst
}

// pickFor returns the replica of s that a caller instance should use:
// global round-robin by default, or the nearest replica (by precomputed
// pair latency, ties round-robin) under RouteNearest.
func (e *Engine) pickFor(from *instance, s Service) *instance {
	list := e.byService[s]
	if !e.cfg.RouteNearest || len(list) == 1 {
		return e.pick(s)
	}
	best := desim.Duration(1 << 62)
	for _, cand := range list {
		if lat := e.netLat[from.id][cand.id]; lat < best {
			best = lat
		}
	}
	var nearest []*instance
	for _, cand := range list {
		if e.netLat[from.id][cand.id] == best {
			nearest = append(nearest, cand)
		}
	}
	inst := nearest[e.rr[s]%len(nearest)]
	e.rr[s]++
	return inst
}

// acquire hands a worker of inst to fn, queueing FIFO when the pool is
// exhausted. fn must call the release it receives exactly once when the
// worker is free.
func (e *Engine) acquire(inst *instance, fn func(release func())) {
	if inst.freeWorkers > 0 {
		inst.freeWorkers--
		e.acquireRun(inst, fn)
		return
	}
	queuedAt := e.eng.Now()
	inst.waiters = append(inst.waiters, func(release func()) {
		if e.measuring {
			inst.workerWaitNS += int64(e.eng.Now().Sub(queuedAt))
		}
		fn(release)
	})
	if len(inst.waiters) > inst.queuePeak {
		inst.queuePeak = len(inst.waiters)
	}
}

// acquireRun invokes fn with a fresh release closure.
func (e *Engine) acquireRun(inst *instance, fn func(release func())) {
	released := false
	fn(func() {
		if released {
			panic("sim: double release of worker")
		}
		released = true
		if len(inst.waiters) > 0 {
			next := inst.waiters[0]
			inst.waiters = inst.waiters[1:]
			e.acquireRun(inst, next)
			return
		}
		inst.freeWorkers++
	})
}

// runSegment executes one CPU burst on the instance's affinity with its
// memory-model CPI, accounting busy time. onCPU ≥ 0 continues directly on
// that (just-vacated) CPU; priority marks lock-holder continuations that
// must not re-queue behind ordinary work if the direct handoff misses.
// done receives the CPU the burst finished on.
func (e *Engine) runSegment(inst *instance, work desim.Duration, onCPU int, priority bool, done func(cpu int)) {
	if work <= 0 {
		done(onCPU)
		return
	}
	var startAt desim.Time
	seg := &simcpu.Segment{
		Work:     work,
		Priority: priority,
		Affinity: inst.spec.Affinity,
		CPI: func(cpu int) float64 {
			return e.mem.CPI(inst.region, cpu, inst.prof.MemWeight)
		},
		OnStart: func(cpu int) {
			inst.running++
			startAt = e.eng.Now()
		},
		OnDone: func(cpu int) {
			inst.running--
			if e.measuring {
				inst.busyNS += int64(e.eng.Now().Sub(startAt))
			}
			done(cpu)
		},
	}
	if onCPU >= 0 {
		e.proc.SubmitOn(seg, onCPU)
	} else {
		e.proc.Submit(seg)
	}
}

// exec runs one handler's CPU demand on the instance. The SerialFrac
// portion executes under the instance's critical section: when the lock is
// free the thread continues on its CPU without a gap; when contended it
// blocks, and the releaser hands lock and CPU over directly — so one
// instance's serial throughput is bounded by the serial exec time alone,
// the classic USL σ ceiling.
func (e *Engine) exec(inst *instance, demand desim.Duration, done func()) {
	if demand <= 0 {
		done()
		return
	}
	f := inst.prof.SerialFrac
	if f <= 0 {
		e.runSegment(inst, demand, -1, false, func(int) { done() })
		return
	}
	serial := desim.Duration(float64(demand) * f)
	parallel := demand - serial
	e.runSegment(inst, parallel, -1, false, func(cpu int) {
		lockAt := e.eng.Now()
		inst.lock.acquire(cpu, func(cpu int) {
			if e.measuring {
				inst.lockWaitNS += int64(e.eng.Now().Sub(lockAt))
			}
			e.runSegment(inst, serial, cpu, true, func(cpu int) {
				inst.lock.release(cpu)
				done()
			})
		})
	})
}

// sampleDemand draws a lognormal handler demand for the instance.
func (e *Engine) sampleDemand(inst *instance, median desim.Duration) desim.Duration {
	if median <= 0 {
		return 0
	}
	return e.demandRNG.LogNormal(median, inst.prof.DemandSigma)
}

// issueOp sends one RPC from the WebUI instance to the resolved callee:
// request latency → callee worker → handler segment → response latency →
// done.
func (e *Engine) issueOp(from *instance, op Op, callee *instance, done func()) {
	lat := e.netLat[from.id][callee.id]
	level := e.netLevel[from.id][callee.id]
	_, recvCPU := e.fabric.CPUCosts(level, op.Payload)
	replySend, _ := e.fabric.CPUCosts(level, op.Payload)
	handler := recvCPU + e.sampleDemand(callee, op.Demand) + replySend

	e.eng.After(lat, func() {
		e.acquire(callee, func(release func()) {
			e.exec(callee, handler, func() {
				callee.served++
				release()
				e.eng.After(lat, done)
			})
		})
	})
}

// serve executes one user request end-to-end, calling done when the
// response reaches the client.
func (e *Engine) serve(req workload.Request, done func()) {
	spec := e.cfg.Requests[req]
	w := e.pick(WebUI)
	e.eng.After(e.cfg.ClientLatency, func() {
		e.acquire(w, func(release func()) {
			// Resolve every op's callee now, then account the send tax in
			// the pre segment and the reply-receive tax in the post
			// segment (sequential sends are also folded into post).
			parCallees := make([]*instance, len(spec.Parallel))
			seqCallees := make([]*instance, len(spec.Sequential))
			pre := e.sampleDemand(w, spec.Pre)
			var post desim.Duration
			for i, op := range spec.Parallel {
				parCallees[i] = e.pickFor(w, op.Target)
				send, recv := e.fabric.CPUCosts(e.netLevel[w.id][parCallees[i].id], op.Payload)
				pre += send
				post += recv
			}
			for i, op := range spec.Sequential {
				seqCallees[i] = e.pickFor(w, op.Target)
				send, recv := e.fabric.CPUCosts(e.netLevel[w.id][seqCallees[i].id], op.Payload)
				post += send + recv
			}
			finish := func() {
				e.exec(w, e.sampleDemand(w, spec.Post)+post, func() {
					w.served++
					release()
					e.eng.After(e.cfg.ClientLatency, done)
				})
			}
			runSequential := func() {
				i := 0
				var next func()
				next = func() {
					if i >= len(spec.Sequential) {
						finish()
						return
					}
					op := spec.Sequential[i]
					callee := seqCallees[i]
					i++
					e.issueOp(w, op, callee, next)
				}
				next()
			}
			e.exec(w, pre, func() {
				if len(spec.Parallel) == 0 {
					runSequential()
					return
				}
				remaining := len(spec.Parallel)
				for i, op := range spec.Parallel {
					e.issueOp(w, op, parCallees[i], func() {
						remaining--
						if remaining == 0 {
							runSequential()
						}
					})
				}
			})
		})
	})
}

// think samples one think-time gap.
func (e *Engine) think() desim.Duration {
	return e.thinkRNG.LogNormal(desim.Duration(e.cfg.Workload.ThinkMedian), e.cfg.Workload.ThinkSigma)
}

// runSession walks one full user session, thinking between requests, and
// calls done when the session ends.
func (e *Engine) runSession(done func()) {
	walker := workload.NewWalker(e.cfg.Workload, e.walkRNG)
	var step func()
	step = func() {
		req, ok := walker.Next()
		if !ok {
			if e.measuring {
				e.sessions.Add(1)
			}
			done()
			return
		}
		issued := e.eng.Now()
		e.serve(req, func() {
			if e.measuring {
				lat := int64(e.eng.Now().Sub(issued))
				e.histAll.Record(lat)
				e.histByReq[req].Record(lat)
				e.tput.Add(1)
			}
			e.eng.After(e.think(), step)
		})
	}
	step()
}

// startClient launches one closed-loop user: session after session,
// forever.
func (e *Engine) startClient(id int) {
	var loop func()
	loop = func() {
		e.runSession(func() {
			e.eng.After(e.think(), loop)
		})
	}
	// Stagger arrivals across one think time to avoid a thundering herd.
	e.eng.After(e.thinkRNG.Uniform(0, desim.Duration(e.cfg.Workload.ThinkMedian)+1), loop)
}

// startArrivals launches the partly-open Poisson session-arrival process.
func (e *Engine) startArrivals() {
	mean := desim.DurationOf(1 / e.cfg.SessionRate)
	var arrive func()
	arrive = func() {
		e.runSession(func() {})
		e.eng.After(e.thinkRNG.Exp(mean), arrive)
	}
	e.eng.After(e.thinkRNG.Exp(mean), arrive)
}

// startHeartbeats schedules registry heartbeats from every instance,
// staggered across the period so they don't all land in one burst.
func (e *Engine) startHeartbeats() {
	reg := e.byService[Registry][0]
	n := len(e.instances)
	for i := range e.instances {
		offset := desim.Duration(int64(HeartbeatPeriod) * int64(i) / int64(n))
		e.eng.After(offset, func() {
			e.eng.Ticker(HeartbeatPeriod, func() {
				e.acquire(reg, func(release func()) {
					e.exec(reg, heartbeatDemand, func() {
						reg.served++
						release()
					})
				})
			})
		})
	}
}

// Run executes the configured simulation and returns its measurements.
func (e *Engine) Run() Result {
	e.startHeartbeats()
	if e.cfg.SessionRate > 0 {
		e.startArrivals()
	} else {
		for i := 0; i < e.cfg.Users; i++ {
			e.startClient(i)
		}
	}
	e.eng.RunUntil(desim.Time(e.cfg.Warmup))

	// Open the measurement window.
	e.measuring = true
	e.proc.ResetStats()
	for _, inst := range e.instances {
		inst.busyNS = 0
		inst.served = 0
		inst.queuePeak = 0
		inst.lockWaitNS = 0
		inst.workerWaitNS = 0
	}
	e.tput.Start(int64(e.eng.Now()))
	e.sessions.Start(int64(e.eng.Now()))

	e.eng.RunUntil(desim.Time(e.cfg.Warmup + e.cfg.Measure))
	e.measuring = false
	e.tput.Stop(int64(e.eng.Now()))
	e.sessions.Stop(int64(e.eng.Now()))
	return e.collect()
}
