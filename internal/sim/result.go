package sim

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/metrics"
	"repro/internal/workload"
)

// ServiceStats summarizes one service's behaviour over the measurement
// window, aggregated across its replicas.
type ServiceStats struct {
	Service Service
	// Replicas is the instance count.
	Replicas int
	// BusyCores is mean CPU consumption in core-equivalents
	// (busy CPU-seconds per wall second).
	BusyCores float64
	// BusyShare is this service's fraction of all busy CPU time.
	BusyShare float64
	// Served counts handler executions.
	Served int64
	// QueuePeak is the worst worker-queue depth across replicas.
	QueuePeak int
	// MeanExecMs is mean on-CPU time per handler execution.
	MeanExecMs float64
	// MeanLockWaitMs is mean critical-section wait per execution.
	MeanLockWaitMs float64
	// MeanWorkerWaitMs is mean worker-pool queueing per admission.
	MeanWorkerWaitMs float64
}

// Result is one run's measurements.
type Result struct {
	// Throughput is completed user requests per second.
	Throughput float64
	// SessionsPerSec is completed user sessions per second.
	SessionsPerSec float64
	// Latency summarizes end-to-end request latency.
	Latency metrics.Snapshot
	// PerRequest breaks latency down by request type.
	PerRequest map[workload.Request]metrics.Snapshot
	// Services breaks CPU use down by service.
	Services []ServiceStats
	// MachineUtil is mean logical-CPU utilization.
	MachineUtil float64
	// BusyCores is total mean CPU consumption in core-equivalents.
	BusyCores float64
	// Histogram is the raw end-to-end latency distribution.
	Histogram *metrics.Histogram
}

// collect assembles the Result after the measurement window closes.
func (e *Engine) collect() Result {
	res := Result{
		Throughput:     e.tput.PerSecond(),
		SessionsPerSec: e.sessions.PerSecond(),
		Latency:        e.histAll.Snapshot(),
		PerRequest:     map[workload.Request]metrics.Snapshot{},
		MachineUtil:    e.proc.Utilization(),
		Histogram:      &e.histAll,
	}
	for r := range e.histByReq {
		if e.histByReq[r].Count() > 0 {
			res.PerRequest[workload.Request(r)] = e.histByReq[r].Snapshot()
		}
	}
	measureSec := e.cfg.Measure.Seconds()
	var totalBusy float64
	agg := map[Service]*ServiceStats{}
	waitAgg := map[Service]*[2]int64{} // lockWait, workerWait
	for _, inst := range e.instances {
		st, ok := agg[inst.spec.Service]
		if !ok {
			st = &ServiceStats{Service: inst.spec.Service}
			agg[inst.spec.Service] = st
			waitAgg[inst.spec.Service] = &[2]int64{}
		}
		st.Replicas++
		st.BusyCores += float64(inst.busyNS) / 1e9 / measureSec
		st.Served += inst.served
		if inst.queuePeak > st.QueuePeak {
			st.QueuePeak = inst.queuePeak
		}
		waitAgg[inst.spec.Service][0] += inst.lockWaitNS
		waitAgg[inst.spec.Service][1] += inst.workerWaitNS
		totalBusy += float64(inst.busyNS) / 1e9 / measureSec
	}
	for s, st := range agg {
		if st.Served > 0 {
			served := float64(st.Served)
			st.MeanExecMs = st.BusyCores * measureSec * 1e3 / served
			st.MeanLockWaitMs = float64(waitAgg[s][0]) / 1e6 / served
			st.MeanWorkerWaitMs = float64(waitAgg[s][1]) / 1e6 / served
		}
	}
	res.BusyCores = totalBusy
	for _, s := range AllServices() {
		st := agg[s]
		if totalBusy > 0 {
			st.BusyShare = st.BusyCores / totalBusy
		}
		res.Services = append(res.Services, *st)
	}
	sort.Slice(res.Services, func(i, j int) bool { return res.Services[i].Service < res.Services[j].Service })
	return res
}

// String renders a compact run summary.
func (r Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "throughput %.1f req/s (%.2f sessions/s), util %.1f%%, latency %v\n",
		r.Throughput, r.SessionsPerSec, r.MachineUtil*100, r.Latency)
	for _, s := range r.Services {
		fmt.Fprintf(&b, "  %-12s ×%d  %6.2f cores (%4.1f%%)  served %d\n",
			s.Service, s.Replicas, s.BusyCores, s.BusyShare*100, s.Served)
	}
	return b.String()
}

// ServiceStat returns the stats row for one service.
func (r Result) ServiceStat(s Service) ServiceStats {
	for _, st := range r.Services {
		if st.Service == s {
			return st
		}
	}
	return ServiceStats{Service: s}
}

// Run builds an Engine for cfg and runs it — the package's main entry
// point.
func Run(cfg Config) (Result, error) {
	e, err := NewEngine(cfg)
	if err != nil {
		return Result{}, err
	}
	return e.Run(), nil
}

// RunDebug runs cfg and renders per-instance diagnostics (served, exec,
// lock/worker waits, queue peaks) for model calibration.
func RunDebug(cfg Config) (string, error) {
	e, err := NewEngine(cfg)
	if err != nil {
		return "", err
	}
	res := e.Run()
	out := res.String()
	for _, inst := range e.instances {
		out += fmt.Sprintf("inst %2d %-12s aff=%v workers=%d served=%d exec=%.2fms lockw=%.2fms workw=%.2fms qpeak=%d\n",
			inst.id, inst.spec.Service, inst.spec.Affinity, inst.spec.Workers, inst.served,
			msPer(inst.busyNS, inst.served), msPer(inst.lockWaitNS, inst.served), msPer(inst.workerWaitNS, inst.served), inst.queuePeak)
	}
	return out, nil
}

func msPer(ns int64, n int64) float64 {
	if n == 0 {
		return 0
	}
	return float64(ns) / 1e6 / float64(n)
}
