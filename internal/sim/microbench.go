package sim

import (
	"fmt"

	"repro/internal/desim"
	"repro/internal/memmodel"
	"repro/internal/simcpu"
	"repro/internal/topology"
)

// MicrobenchConfig drives a single service instance in isolation — the
// per-service scaling experiment (E4): a fixed closed-loop population of
// synthetic callers issues back-to-back handler executions against one
// instance pinned to a given number of cores.
type MicrobenchConfig struct {
	Machine *topology.Machine
	Service Service
	// Profile overrides the service profile (zero value means default).
	Profile *ServiceProfile
	// Demand is the median handler demand per operation.
	Demand desim.Duration
	// Cores allots the first N physical cores (both SMT threads).
	Cores int
	// Concurrency is the closed-loop caller population (0 → 2×CPUs).
	Concurrency int
	Seed        int64
	Warmup      desim.Duration
	Measure     desim.Duration
	CPU         simcpu.Params
	Mem         memmodel.Params
}

// MicrobenchResult reports an isolated-service scaling point.
type MicrobenchResult struct {
	Service     Service
	Cores       int
	Concurrency int
	// OpsPerSec is completed handler executions per second.
	OpsPerSec float64
	// MeanLatencyNs is the mean per-op completion time.
	MeanLatencyNs float64
}

// Microbench runs the isolated-service scaling measurement.
func Microbench(cfg MicrobenchConfig) (MicrobenchResult, error) {
	if cfg.Machine == nil {
		return MicrobenchResult{}, fmt.Errorf("sim: Microbench requires a machine")
	}
	if cfg.Cores <= 0 || cfg.Cores > cfg.Machine.NumCores() {
		return MicrobenchResult{}, fmt.Errorf("sim: Cores %d outside [1,%d]", cfg.Cores, cfg.Machine.NumCores())
	}
	if cfg.Demand <= 0 {
		return MicrobenchResult{}, fmt.Errorf("sim: Demand must be positive")
	}
	if cfg.Warmup < 0 || cfg.Measure <= 0 {
		return MicrobenchResult{}, fmt.Errorf("sim: warmup/measure invalid")
	}
	prof := DefaultProfiles()[cfg.Service]
	if cfg.Profile != nil {
		prof = *cfg.Profile
	}
	if cfg.CPU == (simcpu.Params{}) {
		cfg.CPU = simcpu.DefaultParams()
	}
	if cfg.Mem == (memmodel.Params{}) {
		cfg.Mem = memmodel.DefaultParams()
	}

	eng := desim.New()
	proc, err := simcpu.New(eng, cfg.Machine, cfg.CPU)
	if err != nil {
		return MicrobenchResult{}, err
	}
	mem, err := memmodel.New(cfg.Machine, cfg.Mem)
	if err != nil {
		return MicrobenchResult{}, err
	}

	// Affinity: the first Cores cores, both threads.
	var aff topology.CPUSet
	for core := 0; core < cfg.Cores; core++ {
		for _, id := range cfg.Machine.CoreSiblings(core) {
			aff.Add(id)
		}
	}
	home := cfg.Machine.CPU(aff.IDs()[0]).NUMA
	region, err := mem.AddRegion(prof.WSBytes, home, aff)
	if err != nil {
		return MicrobenchResult{}, err
	}

	conc := cfg.Concurrency
	if conc <= 0 {
		conc = 2 * aff.Count()
	}
	rng := desim.NewRNGPool(cfg.Seed).Stream("microbench")

	var completed int64
	var busyNS int64
	measuring := false
	var lock serialLock

	runSeg := func(work desim.Duration, onCPU int, priority bool, done func(cpu int)) {
		if work <= 0 {
			done(onCPU)
			return
		}
		var startAt desim.Time
		seg := &simcpu.Segment{
			Work:     work,
			Priority: priority,
			Affinity: aff,
			CPI: func(cpu int) float64 {
				return mem.CPI(region, cpu, prof.MemWeight)
			},
			OnStart: func(cpu int) { startAt = eng.Now() },
			OnDone: func(cpu int) {
				if measuring {
					busyNS += int64(eng.Now().Sub(startAt))
				}
				done(cpu)
			},
		}
		if onCPU >= 0 {
			proc.SubmitOn(seg, onCPU)
		} else {
			proc.Submit(seg)
		}
	}

	var issue func()
	issue = func() {
		demand := rng.LogNormal(cfg.Demand, prof.DemandSigma)
		serial := desim.Duration(float64(demand) * prof.SerialFrac)
		parallel := demand - serial
		finish := func() {
			if measuring {
				completed++
			}
			issue()
		}
		runSeg(parallel, -1, false, func(cpu int) {
			if serial <= 0 {
				finish()
				return
			}
			lock.acquire(cpu, func(cpu int) {
				runSeg(serial, cpu, true, func(cpu int) {
					lock.release(cpu)
					finish()
				})
			})
		})
	}
	for i := 0; i < conc; i++ {
		issue()
	}

	eng.RunUntil(desim.Time(cfg.Warmup))
	measuring = true
	eng.RunUntil(desim.Time(cfg.Warmup + cfg.Measure))
	measuring = false

	res := MicrobenchResult{
		Service:     cfg.Service,
		Cores:       cfg.Cores,
		Concurrency: conc,
		OpsPerSec:   float64(completed) / cfg.Measure.Seconds(),
	}
	if completed > 0 {
		res.MeanLatencyNs = float64(busyNS) / float64(completed)
	}
	return res, nil
}
