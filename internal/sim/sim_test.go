package sim

import (
	"testing"

	"repro/internal/desim"
	"repro/internal/memmodel"
	"repro/internal/topology"
	"repro/internal/workload"
)

func TestServiceNames(t *testing.T) {
	if WebUI.String() != "webui" || Registry.String() != "registry" {
		t.Fatal("service names wrong")
	}
	if Service(42).String() != "service(42)" {
		t.Fatal("out-of-range name wrong")
	}
	s, err := ParseService("auth")
	if err != nil || s != Auth {
		t.Fatalf("ParseService(auth) = %v, %v", s, err)
	}
	if _, err := ParseService("nope"); err == nil {
		t.Fatal("unknown service parsed")
	}
	if len(AllServices()) != NumServices {
		t.Fatal("AllServices wrong length")
	}
}

func TestDefaultSpecsValid(t *testing.T) {
	specs := DefaultRequestSpecs()
	if len(specs) != workload.NumRequests {
		t.Fatalf("have %d request specs, want %d", len(specs), workload.NumRequests)
	}
	for r, spec := range specs {
		if spec.Type != r {
			t.Errorf("spec for %v labelled %v", r, spec.Type)
		}
		if err := spec.Validate(); err != nil {
			t.Errorf("spec %v invalid: %v", r, err)
		}
		if spec.TotalMedianDemand() <= 0 {
			t.Errorf("spec %v has no demand", r)
		}
	}
	profiles := DefaultProfiles()
	if len(profiles) != NumServices {
		t.Fatalf("have %d profiles, want %d", len(profiles), NumServices)
	}
}

func TestRequestSpecHelpers(t *testing.T) {
	spec := DefaultRequestSpecs()[workload.ReqProduct]
	if spec.DemandOn(WebUI) != spec.Pre+spec.Post {
		t.Fatal("DemandOn(WebUI) wrong")
	}
	if spec.DemandOn(Recommender) <= 0 {
		t.Fatal("product view should hit recommender")
	}
	if spec.DemandOn(Registry) != 0 {
		t.Fatal("requests must not hit registry")
	}
}

func TestRequestSpecValidation(t *testing.T) {
	bad := []RequestSpec{
		{Pre: -1},
		{Parallel: []Op{{Target: WebUI, Demand: 1}}},
		{Parallel: []Op{{Target: Service(99), Demand: 1}}},
		{Sequential: []Op{{Target: Auth, Demand: -1}}},
	}
	for i, spec := range bad {
		if err := spec.Validate(); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
}

func TestSerialLock(t *testing.T) {
	var l serialLock
	var order []int
	var cpus []int
	grab := func(v int) func(int) {
		return func(cpu int) {
			order = append(order, v)
			cpus = append(cpus, cpu)
		}
	}
	l.acquire(7, grab(0)) // immediate, keeps caller cpu 7
	l.acquire(8, grab(1)) // queued
	l.acquire(9, grab(2)) // queued
	if len(order) != 1 {
		t.Fatalf("held lock granted %d times", len(order))
	}
	l.release(3) // grants 1 with handed-off cpu 3
	l.release(4) // grants 2 with cpu 4
	l.release(5) // frees
	for i, v := range order {
		if v != i {
			t.Fatalf("lock grant order %v not FIFO", order)
		}
	}
	if cpus[0] != 7 || cpus[1] != 3 || cpus[2] != 4 {
		t.Fatalf("cpu handoff wrong: %v", cpus)
	}
	defer func() {
		if recover() == nil {
			t.Error("release of free lock did not panic")
		}
	}()
	l.release(0)
}

func TestDeploymentValidate(t *testing.T) {
	mach := topology.Small()
	good := Unpinned(mach, "t", nil)
	if err := good.Validate(mach); err != nil {
		t.Fatalf("default deployment rejected: %v", err)
	}
	if good.Replicas(WebUI) != 1 {
		t.Fatal("replica count wrong")
	}

	missing := Deployment{Name: "m", Instances: good.Instances[1:]}
	if err := missing.Validate(mach); err == nil {
		t.Fatal("deployment missing a service accepted")
	}
	zeroWorkers := Unpinned(mach, "z", nil)
	zeroWorkers.Instances[0].Workers = 0
	if err := zeroWorkers.Validate(mach); err == nil {
		t.Fatal("zero workers accepted")
	}
	badCPU := Unpinned(mach, "b", nil)
	badCPU.Instances[0].Affinity = topology.NewCPUSet(9999)
	if err := badCPU.Validate(mach); err == nil {
		t.Fatal("out-of-machine affinity accepted")
	}
	badHome := Unpinned(mach, "h", nil)
	badHome.Instances[0].HomeNUMA = 77
	if err := badHome.Validate(mach); err == nil {
		t.Fatal("bad home node accepted")
	}
	if err := (Deployment{Name: "e"}).Validate(mach); err == nil {
		t.Fatal("empty deployment accepted")
	}
}

// smallConfig returns a quick config on the Small machine.
func smallConfig(users int, seed int64) Config {
	mach := topology.Small()
	return Config{
		Machine:    mach,
		Deployment: Unpinned(mach, "test", nil),
		Users:      users,
		Seed:       seed,
		Warmup:     2 * desim.Second,
		Measure:    5 * desim.Second,
	}
}

func TestRunSmokeAndInvariants(t *testing.T) {
	res, err := Run(smallConfig(40, 1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Throughput <= 0 {
		t.Fatal("no throughput")
	}
	if res.Latency.Count == 0 || res.Latency.P50 <= 0 {
		t.Fatal("no latency samples")
	}
	if res.Latency.P99 < res.Latency.P50 {
		t.Fatal("p99 < p50")
	}
	if res.MachineUtil <= 0 || res.MachineUtil > 1 {
		t.Fatalf("machine util %v outside (0,1]", res.MachineUtil)
	}
	// Every request passes WebUI: it must be the top consumer here.
	var topSvc Service
	var topShare float64
	var shareSum float64
	for _, st := range res.Services {
		shareSum += st.BusyShare
		if st.BusyShare > topShare {
			topShare = st.BusyShare
			topSvc = st.Service
		}
	}
	if topSvc != WebUI {
		t.Fatalf("top consumer = %v, want webui\n%v", topSvc, res)
	}
	if shareSum < 0.999 || shareSum > 1.001 {
		t.Fatalf("busy shares sum to %v", shareSum)
	}
	if res.ServiceStat(Registry).BusyShare > 0.02 {
		t.Fatal("registry share should be negligible")
	}
	if res.String() == "" {
		t.Fatal("empty result string")
	}
}

func TestRunDeterministicAcrossRuns(t *testing.T) {
	a, err := Run(smallConfig(20, 7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(smallConfig(20, 7))
	if err != nil {
		t.Fatal(err)
	}
	if a.Throughput != b.Throughput || a.Latency.P99 != b.Latency.P99 {
		t.Fatalf("same seed diverged: %v vs %v req/s", a.Throughput, b.Throughput)
	}
	c, err := Run(smallConfig(20, 8))
	if err != nil {
		t.Fatal(err)
	}
	if a.Latency.Mean == c.Latency.Mean && a.Throughput == c.Throughput {
		t.Fatal("different seeds produced identical results (suspicious)")
	}
}

func TestThroughputSaturatesWithUsers(t *testing.T) {
	// Doubling a small population should raise throughput roughly
	// linearly; at very large populations it must stop growing.
	t40, err := Run(smallConfig(40, 3))
	if err != nil {
		t.Fatal(err)
	}
	t80, err := Run(smallConfig(80, 3))
	if err != nil {
		t.Fatal(err)
	}
	t3k, err := Run(smallConfig(3000, 3))
	if err != nil {
		t.Fatal(err)
	}
	t5k, err := Run(smallConfig(5000, 3))
	if err != nil {
		t.Fatal(err)
	}
	if t80.Throughput < t40.Throughput*1.5 {
		t.Fatalf("light-load scaling broken: 40→%v, 80→%v", t40.Throughput, t80.Throughput)
	}
	if t5k.Throughput > t3k.Throughput*1.25 {
		t.Fatalf("no saturation: 3000→%v, 5000→%v", t3k.Throughput, t5k.Throughput)
	}
	if t5k.Latency.P50 < t80.Latency.P50 {
		t.Fatal("latency should rise under saturation")
	}
}

func TestMoreCoresMoreThroughput(t *testing.T) {
	// Same offered load on 4 vs 16 logical CPUs (via a bigger machine)
	// must not be slower.
	small, err := Run(smallConfig(300, 5))
	if err != nil {
		t.Fatal(err)
	}
	mach := topology.Rome1S()
	big, err := Run(Config{
		Machine:    mach,
		Deployment: Unpinned(mach, "big", nil),
		Users:      300,
		Seed:       5,
		Warmup:     2 * desim.Second,
		Measure:    5 * desim.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Both machines serve the offered load at 300 users; the big machine
	// must match it (within closed-loop noise) and win decisively on tail
	// latency.
	if big.Throughput < small.Throughput*0.97 {
		t.Fatalf("128-CPU machine slower than 16-CPU: %v vs %v", big.Throughput, small.Throughput)
	}
	if big.Latency.P99 > small.Latency.P99 {
		t.Fatal("128-CPU machine has worse tail under identical load")
	}
}

func TestConfigValidation(t *testing.T) {
	mach := topology.Small()
	base := smallConfig(10, 1)
	cases := []func(Config) Config{
		func(c Config) Config { c.Machine = nil; return c },
		func(c Config) Config { c.Users = 0; return c },
		func(c Config) Config { c.Measure = 0; return c },
		func(c Config) Config { c.Warmup = -1; return c },
		func(c Config) Config { c.Deployment = Deployment{}; return c },
		func(c Config) Config {
			c.Workload = &workload.Profile{Name: "bad"}
			return c
		},
	}
	for i, mutate := range cases {
		if _, err := Run(mutate(base)); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	_ = mach
}

func TestPinnedDeploymentRuns(t *testing.T) {
	mach := topology.Small()
	d := Deployment{Name: "pinned"}
	for i, s := range AllServices() {
		ccx := i % mach.NumCCXs()
		d.Instances = append(d.Instances, InstanceSpec{
			Service:  s,
			Affinity: mach.CPUsOfCCX(ccx),
			Workers:  8,
			HomeNUMA: 0,
		})
	}
	res, err := Run(Config{
		Machine:    mach,
		Deployment: d,
		Users:      40,
		Seed:       2,
		Warmup:     desim.Second,
		Measure:    3 * desim.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Throughput <= 0 {
		t.Fatal("pinned deployment produced no throughput")
	}
}

func TestMicrobenchScalesWithCores(t *testing.T) {
	mach := topology.Rome1S()
	run := func(cores int, svc Service) float64 {
		res, err := Microbench(MicrobenchConfig{
			Machine: mach,
			Service: svc,
			Demand:  desim.Duration(500 * desim.Microsecond),
			Cores:   cores,
			Seed:    1,
			Warmup:  desim.Second,
			Measure: 3 * desim.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.OpsPerSec
	}
	// Auth (near-linear) should scale much better 1→16 cores than
	// Persistence (contended).
	authGain := run(16, Auth) / run(1, Auth)
	persGain := run(16, Persistence) / run(1, Persistence)
	if authGain < 8 {
		t.Fatalf("auth 16-core gain = %.1f, want ≥8", authGain)
	}
	if persGain >= authGain {
		t.Fatalf("persistence gain %.1f should trail auth gain %.1f", persGain, authGain)
	}
}

func TestMicrobenchValidation(t *testing.T) {
	mach := topology.Small()
	bad := []MicrobenchConfig{
		{},
		{Machine: mach, Cores: 0, Demand: 1, Measure: 1},
		{Machine: mach, Cores: 999, Demand: 1, Measure: 1},
		{Machine: mach, Cores: 1, Demand: 0, Measure: 1},
		{Machine: mach, Cores: 1, Demand: 1, Measure: 0},
	}
	for i, cfg := range bad {
		if _, err := Microbench(cfg); err == nil {
			t.Errorf("bad microbench config %d accepted", i)
		}
	}
}

func TestInterleavedMemorySupported(t *testing.T) {
	mach := topology.Rome2S()
	d := Unpinned(mach, "il", nil)
	for i := range d.Instances {
		d.Instances[i].HomeNUMA = memmodel.Interleaved
	}
	res, err := Run(Config{
		Machine: mach, Deployment: d, Users: 50, Seed: 1,
		Warmup: desim.Second, Measure: 2 * desim.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Throughput <= 0 {
		t.Fatal("interleaved run produced nothing")
	}
}
