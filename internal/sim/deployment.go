package sim

import (
	"fmt"

	"repro/internal/memmodel"
	"repro/internal/topology"
)

// InstanceSpec places one service instance on the machine.
type InstanceSpec struct {
	Service Service
	// Affinity is the CPU set the instance's threads may run on. Empty
	// means unpinned (whole machine) — the OS-default configuration.
	Affinity topology.CPUSet
	// Workers is the size of the instance's request-worker pool (its
	// servlet thread pool).
	Workers int
	// HomeNUMA is the node holding the instance's heap, or
	// memmodel.Interleaved.
	HomeNUMA int
}

// Deployment is a complete placement of the application.
type Deployment struct {
	Name      string
	Instances []InstanceSpec
}

// Validate checks the deployment against a machine: every service must
// have at least one instance, worker counts must be positive, affinities
// and home nodes must exist.
func (d Deployment) Validate(mach *topology.Machine) error {
	if len(d.Instances) == 0 {
		return fmt.Errorf("sim: deployment %q has no instances", d.Name)
	}
	var have [NumServices]bool
	for i, inst := range d.Instances {
		if inst.Service < 0 || inst.Service >= numServices {
			return fmt.Errorf("sim: deployment %q instance %d has invalid service %d", d.Name, i, inst.Service)
		}
		have[inst.Service] = true
		if inst.Workers <= 0 {
			return fmt.Errorf("sim: deployment %q instance %d (%v) has %d workers", d.Name, i, inst.Service, inst.Workers)
		}
		if inst.HomeNUMA != memmodel.Interleaved && (inst.HomeNUMA < 0 || inst.HomeNUMA >= mach.NumNUMA()) {
			return fmt.Errorf("sim: deployment %q instance %d (%v) homes on invalid node %d", d.Name, i, inst.Service, inst.HomeNUMA)
		}
		bad := -1
		inst.Affinity.ForEach(func(id int) {
			if !mach.ValidCPU(id) && bad < 0 {
				bad = id
			}
		})
		if bad >= 0 {
			return fmt.Errorf("sim: deployment %q instance %d (%v) pins to CPU %d outside machine", d.Name, i, inst.Service, bad)
		}
	}
	for s := Service(0); s < numServices; s++ {
		if !have[s] {
			return fmt.Errorf("sim: deployment %q missing service %v", d.Name, s)
		}
	}
	return nil
}

// Replicas counts instances of a service.
func (d Deployment) Replicas(s Service) int {
	n := 0
	for _, inst := range d.Instances {
		if inst.Service == s {
			n++
		}
	}
	return n
}

// Unpinned returns the OS-default deployment: one instance per service
// (replicas[s] overrides, when provided), no affinity, interleaved memory,
// workers sized to the machine.
func Unpinned(mach *topology.Machine, name string, replicas map[Service]int) Deployment {
	d := Deployment{Name: name}
	for _, s := range AllServices() {
		n := 1
		if replicas != nil && replicas[s] > 0 {
			n = replicas[s]
		}
		for i := 0; i < n; i++ {
			d.Instances = append(d.Instances, InstanceSpec{
				Service:  s,
				Workers:  defaultWorkers(s, mach.NumCPUs()),
				HomeNUMA: memmodel.Interleaved,
			})
		}
	}
	return d
}

// defaultWorkers sizes an instance's thread pool for a CPU allotment,
// mirroring typical servlet-container defaults (bounded, CPU-proportional).
func defaultWorkers(s Service, cpus int) int {
	w := cpus
	if s == Registry {
		w = 4
	}
	if w < 4 {
		w = 4
	}
	if w > 128 {
		w = 128
	}
	return w
}

// DefaultWorkers exposes the sizing rule for the placement package.
func DefaultWorkers(s Service, cpus int) int { return defaultWorkers(s, cpus) }
