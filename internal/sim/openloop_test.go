package sim

import (
	"math"
	"testing"

	"repro/internal/desim"
	"repro/internal/topology"
)

func TestOpenLoopDeliversOfferedLoad(t *testing.T) {
	mach := topology.Small()
	res, err := Run(Config{
		Machine:     mach,
		Deployment:  Unpinned(mach, "open", nil),
		SessionRate: 20, // sessions/s, far below capacity
		Seed:        9,
		// A session lasts ~7 s wall (13 requests × ~0.55 s think), so
		// steady state needs a long warmup and window.
		Warmup:  15 * desim.Second,
		Measure: 60 * desim.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Completed sessions per second should match the arrival rate.
	if math.Abs(res.SessionsPerSec-20)/20 > 0.2 {
		t.Fatalf("sessions/s = %.1f, want ≈20", res.SessionsPerSec)
	}
	if res.Throughput <= 0 || res.Latency.Count == 0 {
		t.Fatal("no requests measured")
	}
}

func TestOpenLoopLatencyGrowsWithLoad(t *testing.T) {
	mach := topology.Small()
	run := func(rate float64) Result {
		res, err := Run(Config{
			Machine:     mach,
			Deployment:  Unpinned(mach, "open", nil),
			SessionRate: rate,
			Seed:        9,
			Warmup:      2 * desim.Second,
			Measure:     8 * desim.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	light := run(10)
	// The small machine handles ~230 sessions/s (3000 req/s ÷ 13
	// req/session); 180 is deep in the knee.
	heavy := run(180)
	if heavy.Latency.P99 <= light.Latency.P99 {
		t.Fatalf("p99 did not grow with load: %.2fms vs %.2fms",
			float64(heavy.Latency.P99)/1e6, float64(light.Latency.P99)/1e6)
	}
	if heavy.Throughput <= light.Throughput {
		t.Fatal("heavier offered load should complete more requests below saturation")
	}
}

func TestUsersAndSessionRateMutuallyExclusive(t *testing.T) {
	mach := topology.Small()
	base := Config{
		Machine: mach, Deployment: Unpinned(mach, "x", nil),
		Warmup: desim.Second, Measure: desim.Second,
	}
	both := base
	both.Users = 10
	both.SessionRate = 5
	if _, err := Run(both); err == nil {
		t.Fatal("both load modes accepted")
	}
	neither := base
	if _, err := Run(neither); err == nil {
		t.Fatal("no load mode accepted")
	}
}
