// Package sim is the full-system simulator: it deploys the TeaStore
// service graph onto a simulated multi-socket server (simcpu + memmodel +
// simnet) and drives it with closed-loop users following a workload
// profile, reproducing the paper's scale-up experiments without the
// original hardware.
//
// The performance model composes four calibrated mechanisms:
//
//  1. per-request CPU demands per service (lognormal), plus the per-message
//     CPU tax of RPC;
//  2. intra-instance serialization: a SerialFrac share of every handler
//     executes under the instance's critical section (the Universal
//     Scalability Law's σ) — this is what makes some services "not scale"
//     and replication pay off;
//  3. cache and NUMA effects via memmodel CPI multipliers;
//  4. SMT contention and frequency boost via simcpu.
package sim

import (
	"fmt"

	"repro/internal/desim"
)

// Service identifies one of the six TeaStore microservices.
type Service int

// The TeaStore services.
const (
	WebUI Service = iota
	Auth
	Persistence
	Recommender
	Image
	Registry
	numServices
)

var serviceNames = [...]string{"webui", "auth", "persistence", "recommender", "image", "registry"}

func (s Service) String() string {
	if s < 0 || s >= numServices {
		return fmt.Sprintf("service(%d)", int(s))
	}
	return serviceNames[s]
}

// NumServices is the count of distinct services.
const NumServices = int(numServices)

// AllServices lists every service.
func AllServices() []Service {
	out := make([]Service, NumServices)
	for i := range out {
		out[i] = Service(i)
	}
	return out
}

// ParseService resolves a service name.
func ParseService(name string) (Service, error) {
	for i, n := range serviceNames {
		if n == name {
			return Service(i), nil
		}
	}
	return 0, fmt.Errorf("sim: unknown service %q", name)
}

// ServiceProfile captures a service's intrinsic performance character —
// the per-service properties the paper's characterization measures.
type ServiceProfile struct {
	// WSBytes is the per-instance working set (heap the service actually
	// touches per unit time).
	WSBytes int64
	// MemWeight is memory sensitivity: the fraction of baseline runtime
	// that stalls on memory at 100 % miss ratio and local latency.
	MemWeight float64
	// SerialFrac is the fraction of every handler's demand that executes
	// inside the instance's global critical section (store lock, cache
	// lock, connection-pool mutex). It is the USL σ of the service: one
	// instance's throughput can never exceed 1/(SerialFrac×demand)
	// regardless of how many cores it gets — the mechanism behind the
	// paper's "some services do not scale up" finding, and the reason
	// replication helps them.
	SerialFrac float64
	// DemandSigma is the lognormal shape of handler demand variation.
	DemandSigma float64
	// FrontendStall is the frontend-bound CPI fraction (big instruction
	// footprint); it feeds the microarch counter model and adds a
	// constant CPI term.
	FrontendStall float64
}

// serialLock is an instance's critical section: a capacity-1 resource with
// a FIFO queue, granted inline for determinism. Grants carry the CPU the
// releaser just vacated, so the next holder continues without a scheduling
// gap — direct lock-plus-CPU handoff.
type serialLock struct {
	busy bool
	q    []func(cpu int)
}

// acquire runs fn once the lock is free (immediately, on the caller's cpu,
// when uncontended; later on the releaser's cpu when queued).
func (l *serialLock) acquire(cpu int, fn func(cpu int)) {
	if !l.busy {
		l.busy = true
		fn(cpu)
		return
	}
	l.q = append(l.q, fn)
}

// release hands the lock (and the vacated cpu) to the oldest waiter, or
// frees it.
func (l *serialLock) release(cpu int) {
	if !l.busy {
		panic("sim: release of free serial lock")
	}
	if len(l.q) > 0 {
		next := l.q[0]
		l.q = l.q[1:]
		next(cpu)
		return
	}
	l.busy = false
}

// DefaultProfiles returns the calibrated per-service profiles.
//
// The shapes encode the characterization the paper reports: Auth is a
// stateless CPU-bound service that scales nearly linearly; Persistence
// serializes on its store and scales worst; Image is cache-footprint heavy;
// Recommender is memory-bound but read-only; WebUI is the orchestration
// front end with a large instruction footprint; Registry is negligible.
func DefaultProfiles() map[Service]ServiceProfile {
	return map[Service]ServiceProfile{
		WebUI: {
			WSBytes: 48 << 20, MemWeight: 0.50, SerialFrac: 0.02,
			DemandSigma: 0.30, FrontendStall: 0.35,
		},
		Auth: {
			WSBytes: 8 << 20, MemWeight: 0.15, SerialFrac: 0.005,
			DemandSigma: 0.20, FrontendStall: 0.15,
		},
		Persistence: {
			WSBytes: 64 << 20, MemWeight: 0.60, SerialFrac: 0.22,
			DemandSigma: 0.35, FrontendStall: 0.25,
		},
		Recommender: {
			WSBytes: 96 << 20, MemWeight: 0.70, SerialFrac: 0.03,
			DemandSigma: 0.30, FrontendStall: 0.20,
		},
		Image: {
			WSBytes: 80 << 20, MemWeight: 0.55, SerialFrac: 0.10,
			DemandSigma: 0.40, FrontendStall: 0.20,
		},
		Registry: {
			WSBytes: 4 << 20, MemWeight: 0.10, SerialFrac: 0,
			DemandSigma: 0.10, FrontendStall: 0.10,
		},
	}
}

// HeartbeatPeriod is how often every instance pings the registry.
const HeartbeatPeriod = desim.Duration(desim.Second)

// Heartbeatdemand is the registry CPU cost of one heartbeat.
const heartbeatDemand = desim.Duration(50 * desim.Microsecond)
