package sim

import (
	"reflect"
	"testing"

	"repro/internal/desim"
	"repro/internal/topology"
)

// TestRunDeterminismExhaustive extends the desim kernel's seed contract
// to every statistic of the full simulator stack (workers, SMT
// scheduling, memory CPI, network taxes, heartbeats): two Runs of an
// identical Config must return exactly equal Results down to each
// per-request and per-service field, and a different seed must not.
// TestRunDeterministicAcrossRuns (sim_test.go) spot-checks the headline
// numbers; this test deep-compares everything because the
// cross-validation harness replays calibrated sweeps from recorded
// seeds and any drifting field would corrupt the comparison.
func TestRunDeterminismExhaustive(t *testing.T) {
	cfg := Config{
		Machine: topology.Small(),
		Deployment: Unpinned(topology.Small(), "determinism", map[Service]int{
			WebUI: 1, Auth: 1, Persistence: 1, Recommender: 1, Image: 1, Registry: 1,
		}),
		Users:   8,
		Seed:    7,
		Warmup:  100 * desim.Millisecond,
		Measure: 500 * desim.Millisecond,
	}

	r1, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	if r1.Throughput != r2.Throughput {
		t.Fatalf("throughput diverged: %v vs %v", r1.Throughput, r2.Throughput)
	}
	if r1.Latency != r2.Latency {
		t.Fatalf("latency snapshots diverged:\n%+v\n%+v", r1.Latency, r2.Latency)
	}
	if !reflect.DeepEqual(r1.PerRequest, r2.PerRequest) {
		t.Fatalf("per-request snapshots diverged:\n%+v\n%+v", r1.PerRequest, r2.PerRequest)
	}
	if !reflect.DeepEqual(r1.Services, r2.Services) {
		t.Fatalf("service stats diverged:\n%+v\n%+v", r1.Services, r2.Services)
	}
	if r1.MachineUtil != r2.MachineUtil || r1.BusyCores != r2.BusyCores {
		t.Fatalf("utilization diverged: %v/%v vs %v/%v",
			r1.MachineUtil, r1.BusyCores, r2.MachineUtil, r2.BusyCores)
	}

	cfg.Seed = 8
	r3, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r3.Throughput == r1.Throughput && reflect.DeepEqual(r3.PerRequest, r1.PerRequest) {
		t.Fatal("changing the seed left the run byte-identical — the seed is being ignored")
	}
}
