package sim

import (
	"fmt"

	"repro/internal/desim"
	"repro/internal/workload"
)

// Op is one downstream call a request makes from the WebUI orchestrator.
type Op struct {
	// Target is the callee service.
	Target Service
	// Demand is the median handler CPU demand at the callee.
	Demand desim.Duration
	// Payload is the response size in bytes (drives serialization CPU and
	// is reported to the interconnect model).
	Payload int
}

// RequestSpec describes how one user-visible request executes: WebUI
// pre-work, a parallel fan-out, a sequential tail, and WebUI post-work.
// This mirrors TeaStore's synchronous-servlet WebUI, which holds its worker
// for the whole request while downstream calls proceed.
type RequestSpec struct {
	Type workload.Request
	// Pre and Post are the WebUI's own median CPU demands before the
	// fan-out and after the last response.
	Pre, Post desim.Duration
	// Parallel ops are issued concurrently after Pre.
	Parallel []Op
	// Sequential ops run one after another once the parallel group
	// completes (e.g. checkout: validate, then write the order).
	Sequential []Op
}

// Validate reports the first structural problem.
func (r RequestSpec) Validate() error {
	if r.Pre < 0 || r.Post < 0 {
		return fmt.Errorf("sim: request %v has negative WebUI demand", r.Type)
	}
	for _, op := range append(append([]Op{}, r.Parallel...), r.Sequential...) {
		if op.Target < 0 || op.Target >= numServices {
			return fmt.Errorf("sim: request %v targets invalid service %d", r.Type, op.Target)
		}
		if op.Target == WebUI {
			return fmt.Errorf("sim: request %v fans out to WebUI itself", r.Type)
		}
		if op.Demand < 0 || op.Payload < 0 {
			return fmt.Errorf("sim: request %v has negative op demand/payload", r.Type)
		}
	}
	return nil
}

// TotalMedianDemand sums the request's median CPU demand across services,
// excluding RPC tax. Used by analytical capacity estimates.
func (r RequestSpec) TotalMedianDemand() desim.Duration {
	total := r.Pre + r.Post
	for _, op := range r.Parallel {
		total += op.Demand
	}
	for _, op := range r.Sequential {
		total += op.Demand
	}
	return total
}

// DemandOn sums the request's median demand on one service.
func (r RequestSpec) DemandOn(s Service) desim.Duration {
	var total desim.Duration
	if s == WebUI {
		total += r.Pre + r.Post
	}
	for _, op := range r.Parallel {
		if op.Target == s {
			total += op.Demand
		}
	}
	for _, op := range r.Sequential {
		if op.Target == s {
			total += op.Demand
		}
	}
	return total
}

// DefaultRequestSpecs returns the calibrated request execution graph: the
// TeaStore fan-out per store action. Demands are medians on one idle core
// at base frequency.
func DefaultRequestSpecs() map[workload.Request]RequestSpec {
	us := func(n int64) desim.Duration { return desim.Duration(n) * desim.Microsecond }
	return map[workload.Request]RequestSpec{
		workload.ReqHome: {
			Type: workload.ReqHome, Pre: us(600), Post: us(300),
			Parallel: []Op{
				{Target: Persistence, Demand: us(300), Payload: 2 << 10},
				{Target: Image, Demand: us(250), Payload: 30 << 10},
			},
		},
		workload.ReqLogin: {
			Type: workload.ReqLogin, Pre: us(400), Post: us(250),
			Sequential: []Op{
				{Target: Auth, Demand: us(1200), Payload: 1 << 10}, // password hash verify
				{Target: Persistence, Demand: us(350), Payload: 2 << 10},
			},
		},
		workload.ReqCategory: {
			Type: workload.ReqCategory, Pre: us(500), Post: us(450),
			Parallel: []Op{
				{Target: Auth, Demand: us(120), Payload: 512},
				{Target: Persistence, Demand: us(700), Payload: 8 << 10},
				{Target: Image, Demand: us(1300), Payload: 150 << 10}, // 20 preview images
			},
		},
		workload.ReqProduct: {
			Type: workload.ReqProduct, Pre: us(450), Post: us(400),
			Parallel: []Op{
				{Target: Auth, Demand: us(120), Payload: 512},
				{Target: Persistence, Demand: us(300), Payload: 3 << 10},
				{Target: Image, Demand: us(700), Payload: 80 << 10},
				{Target: Recommender, Demand: us(900), Payload: 1 << 10},
			},
		},
		workload.ReqAddToCart: {
			Type: workload.ReqAddToCart, Pre: us(350), Post: us(200),
			Sequential: []Op{
				{Target: Auth, Demand: us(400), Payload: 1 << 10}, // cart re-sign
			},
		},
		workload.ReqViewCart: {
			Type: workload.ReqViewCart, Pre: us(400), Post: us(300),
			Parallel: []Op{
				{Target: Auth, Demand: us(300), Payload: 1 << 10},
				{Target: Recommender, Demand: us(700), Payload: 1 << 10},
				{Target: Image, Demand: us(500), Payload: 60 << 10},
			},
		},
		workload.ReqCheckout: {
			Type: workload.ReqCheckout, Pre: us(400), Post: us(250),
			Sequential: []Op{
				{Target: Auth, Demand: us(350), Payload: 1 << 10},
				{Target: Persistence, Demand: us(900), Payload: 2 << 10}, // order write
			},
		},
		workload.ReqProfile: {
			Type: workload.ReqProfile, Pre: us(350), Post: us(250),
			Parallel: []Op{
				{Target: Auth, Demand: us(120), Payload: 512},
				{Target: Persistence, Demand: us(600), Payload: 4 << 10},
			},
		},
		workload.ReqLogout: {
			Type: workload.ReqLogout, Pre: us(250), Post: us(150),
			Sequential: []Op{
				{Target: Auth, Demand: us(150), Payload: 256},
			},
		},
	}
}
