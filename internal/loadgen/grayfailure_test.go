package loadgen

import (
	"context"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// idemWorker builds a measuring worker with idempotent retries on.
func idemWorker(t *testing.T, base string, pool *webuiPool) *worker {
	t.Helper()
	var measuring atomic.Bool
	measuring.Store(true)
	var errCount atomic.Int64
	w, err := newWorker(Config{WebUIURL: base, ThinkScale: 0.01, CatalogUsers: 1, RetryIdempotent: true},
		Catalog{CategoryIDs: []int64{1}, ProductIDs: []int64{1}}, pool, nil, 0, &measuring, &errCount)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// TestWorkerRetriesFailedGET: a 500 on a GET is re-issued (bounded) when
// RetryIdempotent is on, and the eventual success counts no error.
func TestWorkerRetriesFailedGET(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()

	w := idemWorker(t, srv.URL, nil)
	if err := w.get(context.Background(), "/"); err != nil {
		t.Fatalf("retried GET still reported error: %v", err)
	}
	if calls.Load() != 2 {
		t.Fatalf("server saw %d calls, want 2", calls.Load())
	}
	if w.idemRetried != 1 {
		t.Fatalf("idemRetried = %d, want 1", w.idemRetried)
	}
}

// TestWorkerRetryRepicksReplica: the retry lands on a different replica
// when a pool is available — rescuing the request from a failing replica
// instead of banging on it.
func TestWorkerRetryRepicksReplica(t *testing.T) {
	var badCalls, goodCalls atomic.Int64
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		badCalls.Add(1)
		w.WriteHeader(http.StatusInternalServerError)
	}))
	defer bad.Close()
	good := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		goodCalls.Add(1)
		w.WriteHeader(http.StatusOK)
	}))
	defer good.Close()
	// A registry stub listing only the good replica, so every re-pick
	// deterministically escapes the bad one.
	registry := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_ = json.NewEncoder(w).Encode([]string{strings.TrimPrefix(good.URL, "http://")})
	}))
	defer registry.Close()

	pool := newWebuiPool(registry.URL, bad.URL, false)
	w := idemWorker(t, bad.URL, pool)
	// Prime the pool's listing (first refresh is async).
	rng := rand.New(rand.NewSource(1))
	deadline := time.Now().Add(2 * time.Second)
	for pool.pick(context.Background(), rng) != good.URL {
		if time.Now().After(deadline) {
			t.Fatal("pool never resolved the registry listing")
		}
		time.Sleep(5 * time.Millisecond)
	}

	if err := w.get(context.Background(), "/"); err != nil {
		t.Fatalf("re-picked GET still reported error: %v", err)
	}
	if badCalls.Load() != 1 || goodCalls.Load() != 1 {
		t.Fatalf("bad/good calls = %d/%d, want 1/1", badCalls.Load(), goodCalls.Load())
	}
}

// TestWorkerNeverRetriesPOST: non-idempotent requests get exactly one
// attempt no matter what — a replayed checkout is a double order.
func TestWorkerNeverRetriesPOST(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusInternalServerError)
	}))
	defer srv.Close()

	w := idemWorker(t, srv.URL, nil)
	if err := w.postForm(context.Background(), "/cart/checkout", nil); err == nil {
		t.Fatal("failed POST reported success")
	}
	if calls.Load() != 1 {
		t.Fatalf("server saw %d POST attempts, want exactly 1", calls.Load())
	}
	if w.idemRetried != 0 {
		t.Fatalf("idemRetried = %d for a POST, want 0", w.idemRetried)
	}
}

// TestWorkerRetriesKeyedCheckout: a checkout POST carrying a client
// order ID IS replayed on failure — the key dedupes server-side, so the
// retry can only ever land the same order once — and every attempt
// carries the same key and body.
func TestWorkerRetriesKeyedCheckout(t *testing.T) {
	var calls atomic.Int64
	var keys []string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if err := r.ParseForm(); err != nil {
			t.Errorf("parse form: %v", err)
		}
		keys = append(keys, r.PostFormValue("clientOrderId"))
		if calls.Add(1) == 1 {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()

	w := idemWorker(t, srv.URL, nil)
	err := w.postKeyedForm(context.Background(), "/cart/checkout",
		url.Values{"clientOrderId": {"key-123"}})
	if err != nil {
		t.Fatalf("retried keyed checkout still reported error: %v", err)
	}
	if calls.Load() != 2 {
		t.Fatalf("server saw %d attempts, want 2", calls.Load())
	}
	if w.checkoutRetried != 1 || w.idemRetried != 0 {
		t.Fatalf("checkoutRetried/idemRetried = %d/%d, want 1/0", w.checkoutRetried, w.idemRetried)
	}
	for _, k := range keys {
		if k != "key-123" {
			t.Fatalf("attempt keys = %v, want every attempt to carry key-123", keys)
		}
	}
}

// TestTimelineBucketsBySecond: records land in their request-start
// windows with per-window percentiles, errors, and sheds.
func TestTimelineBucketsBySecond(t *testing.T) {
	tl := &timeline{}
	start := time.Now()
	tl.begin(start)

	tl.record(start.Add(100*time.Millisecond), int64(10*time.Millisecond), false)
	tl.record(start.Add(200*time.Millisecond), int64(20*time.Millisecond), false)
	tl.record(start.Add(300*time.Millisecond), 0, true)
	tl.recordShed(start.Add(400 * time.Millisecond))
	tl.record(start.Add(2500*time.Millisecond), int64(80*time.Millisecond), false)
	tl.record(start.Add(-time.Second), int64(time.Millisecond), false) // pre-start: dropped

	ws := tl.windows()
	if len(ws) != 3 {
		t.Fatalf("got %d windows, want 3", len(ws))
	}
	w0 := ws[0]
	if w0.Requests != 3 || w0.Errors != 1 || w0.Shed != 1 {
		t.Fatalf("window 0 = %+v, want 3 requests, 1 error, 1 shed", w0)
	}
	if w0.P99() < 10*time.Millisecond || w0.P99() > 40*time.Millisecond {
		t.Fatalf("window 0 p99 = %v, want ≈20ms", w0.P99())
	}
	if ws[1].Requests != 0 {
		t.Fatalf("quiet window 1 = %+v, want empty", ws[1])
	}
	if ws[2].Requests != 1 || ws[2].P99() < 80*time.Millisecond {
		t.Fatalf("window 2 = %+v, want 1 request at ≈80ms", ws[2])
	}
}

// TestPoolEjectsSlowReplicaAndReadmits: the session pool steers picks
// away from a replica whose EWMA stands far above its peers, keeps at
// least one URL eligible, and re-admits after probation.
func TestPoolEjectsSlowReplicaAndReadmits(t *testing.T) {
	pool := newWebuiPool("http://unused.invalid", "http://fallback", true)
	pool.urls = []string{"http://fast-a", "http://fast-b", "http://slow"}
	pool.fetched = time.Now().Add(time.Hour) // keep the refresh loop out of this test

	for i := 0; i < 20; i++ {
		pool.observe("http://fast-a", 5*time.Millisecond, false)
		pool.observe("http://fast-b", 5*time.Millisecond, false)
		pool.observe("http://slow", 100*time.Millisecond, false)
	}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 100; i++ {
		if got := pool.pick(context.Background(), rng); got == "http://slow" {
			t.Fatalf("pick %d returned the ejected slow replica", i)
		}
	}

	// Probation lapses: the replica is pickable again with fresh stats.
	pool.mu.Lock()
	pool.replicas["http://slow"].ejectedUntil = time.Now().Add(-time.Millisecond)
	pool.mu.Unlock()
	seen := false
	for i := 0; i < 200 && !seen; i++ {
		seen = pool.pick(context.Background(), rng) == "http://slow"
	}
	if !seen {
		t.Fatal("slow replica never re-admitted after probation")
	}

	// Pool-wide slowness ejects nobody: every replica stays eligible.
	pool2 := newWebuiPool("http://unused.invalid", "http://fallback", true)
	pool2.urls = []string{"http://a", "http://b"}
	pool2.fetched = time.Now().Add(time.Hour)
	for i := 0; i < 20; i++ {
		pool2.observe("http://a", 100*time.Millisecond, false)
		pool2.observe("http://b", 100*time.Millisecond, false)
	}
	got := map[string]bool{}
	for i := 0; i < 100; i++ {
		got[pool2.pick(context.Background(), rng)] = true
	}
	if !got["http://a"] || !got["http://b"] {
		t.Fatalf("uniformly slow pool lost replicas from rotation: %v", got)
	}
}
