package loadgen

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"time"

	"repro/internal/httpkit"
	"repro/internal/metrics"
)

// FetchBreakdown discovers every live service instance through the
// registry and collects each one's /metrics.json into a per-service
// p50/p95/p99 latency table with resilience counters (retries, sheds,
// breaker trips) — the remote counterpart of
// teastore.Stack.BreakdownTable for load runs driven at a stack in
// another process. The share column reports each replica's slice of its
// service's requests, making skewed client-side balancing visible at a
// glance.
func FetchBreakdown(ctx context.Context, registryURL string) (metrics.Table, error) {
	t := metrics.Table{
		Title:   "Per-service latency breakdown",
		Headers: []string{"service", "instance", "requests", "share", "p50 ms", "p95 ms", "p99 ms", "retries", "hedges", "shed", "opens", "ejected", "autoscale"},
	}
	hc := httpkit.NewClient(5 * time.Second)
	var names []string
	if err := hc.GetJSON(ctx, registryURL+"/services", &names); err != nil {
		return t, fmt.Errorf("loadgen: listing services at %s: %w", registryURL, err)
	}
	if len(names) == 0 {
		return t, fmt.Errorf("loadgen: registry at %s lists no services (registrations expired?)", registryURL)
	}
	sort.Strings(names)
	autoscale := fetchAutoscale(ctx, hc, registryURL, names)

	// Collect every instance's snapshot before emitting any row: whether a
	// replica is ejected is recorded by its *callers*, so a row's ejected
	// column needs the whole stack's snapshots in hand first.
	type instance struct {
		addr string
		snap httpkit.MetricsSnapshot
	}
	byService := map[string][]instance{}
	for _, name := range names {
		var addrs []string
		if err := hc.GetJSON(ctx, registryURL+"/services/"+name, &addrs); err != nil {
			return t, fmt.Errorf("loadgen: resolving %s: %w", name, err)
		}
		sort.Strings(addrs)
		for _, addr := range addrs {
			var snap httpkit.MetricsSnapshot
			if err := hc.GetJSON(ctx, "http://"+addr+"/metrics.json", &snap); err != nil {
				return t, fmt.Errorf("loadgen: metrics from %s@%s: %w", name, addr, err)
			}
			byService[name] = append(byService[name], instance{addr: addr, snap: snap})
		}
	}
	ejected := map[string]map[string]bool{}
	for _, instances := range byService {
		for _, in := range instances {
			for dest, replicas := range in.snap.Resilience.Replicas {
				for addr, rc := range replicas {
					if rc.Ejected {
						if ejected[dest] == nil {
							ejected[dest] = map[string]bool{}
						}
						ejected[dest][addr] = true
					}
				}
			}
		}
	}

	ms := func(v int64) string { return fmt.Sprintf("%.3f", float64(v)/1e6) }
	for _, name := range names {
		instances := byService[name]
		var total int64
		for _, in := range instances {
			total += in.snap.Requests
		}
		for _, in := range instances {
			snap := in.snap
			var opens int64
			for _, bs := range snap.Resilience.Breakers {
				opens += bs.Opens
			}
			share := "-"
			if total > 0 {
				share = fmt.Sprintf("%.1f%%", 100*float64(snap.Requests)/float64(total))
			}
			ej := "-"
			if ejected[name][in.addr] {
				ej = "yes"
			}
			asc := autoscale[name]
			if asc == "" {
				asc = "-"
			}
			t.AddRow(name, in.addr, strconv.FormatInt(snap.Requests, 10), share,
				ms(snap.Overall.P50), ms(snap.Overall.P95), ms(snap.Overall.P99),
				strconv.FormatInt(snap.Resilience.Retries, 10),
				strconv.FormatInt(snap.Resilience.Hedges, 10),
				strconv.FormatInt(snap.Resilience.Shed, 10),
				strconv.FormatInt(opens, 10),
				ej,
				asc)
		}
	}
	return t, nil
}

// fetchAutoscale summarizes the scale-up control plane's view per service
// ("actual/desired last-action") when the stack runs one — the registry
// lists a "scalectl" endpoint whose /status reports every controlled
// service. Stacks without a reconciler, or an unreachable controller,
// yield an empty map and the table shows "-" throughout. The status shape
// mirrors scalectl.Status; it is decoded structurally so this package
// stays import-free of the control plane.
func fetchAutoscale(ctx context.Context, hc *httpkit.Client, registryURL string, names []string) map[string]string {
	out := map[string]string{}
	found := false
	for _, n := range names {
		if n == "scalectl" {
			found = true
			break
		}
	}
	if !found {
		return out
	}
	var addrs []string
	if err := hc.GetJSON(ctx, registryURL+"/services/scalectl", &addrs); err != nil || len(addrs) == 0 {
		return out
	}
	var status struct {
		Services []struct {
			Service      string `json:"service"`
			Desired      int    `json:"desired"`
			Actual       int    `json:"actual"`
			LastDecision struct {
				Action string `json:"action"`
			} `json:"lastDecision"`
		} `json:"services"`
	}
	if err := hc.GetJSON(ctx, "http://"+addrs[0]+"/status", &status); err != nil {
		return out
	}
	for _, ss := range status.Services {
		action := ss.LastDecision.Action
		if action == "" {
			action = "pending"
		}
		out[ss.Service] = fmt.Sprintf("%d/%d %s", ss.Actual, ss.Desired, action)
	}
	return out
}
