package loadgen

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// shedWorker builds a worker aimed at the given base URL with measurement
// enabled.
func shedWorker(t *testing.T, base string) *worker {
	t.Helper()
	var measuring atomic.Bool
	measuring.Store(true)
	var errCount atomic.Int64
	w, err := newWorker(Config{WebUIURL: base, ThinkScale: 0.01, CatalogUsers: 1},
		Catalog{CategoryIDs: []int64{1}, ProductIDs: []int64{1}}, nil, nil, 0, &measuring, &errCount)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// TestWorkerHonoursRetryAfter: a 503 with Retry-After is a shed, not an
// error — the worker backs off, re-issues, and records both outcomes.
func TestWorkerHonoursRetryAfter(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "0.05")
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()

	w := shedWorker(t, srv.URL)
	start := time.Now()
	if err := w.get(context.Background(), "/"); err != nil {
		t.Fatalf("shed request reported error: %v", err)
	}
	if elapsed := time.Since(start); elapsed < 50*time.Millisecond {
		t.Fatalf("Retry-After not honoured: re-issued after %v", elapsed)
	}
	if calls.Load() != 2 {
		t.Fatalf("server saw %d calls, want 2", calls.Load())
	}
	if w.shed != 1 || w.retried != 1 {
		t.Fatalf("shed/retried = %d/%d, want 1/1", w.shed, w.retried)
	}
}

// TestWorkerGivesUpAfterShedBudget: persistent shedding stops being
// retried after maxShedRetries and surfaces as an error.
func TestWorkerGivesUpAfterShedBudget(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Retry-After", "0.01")
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer srv.Close()

	w := shedWorker(t, srv.URL)
	if err := w.get(context.Background(), "/"); err == nil {
		t.Fatal("endless shedding reported success")
	}
	if got := calls.Load(); got != maxShedRetries+1 {
		t.Fatalf("server saw %d calls, want %d", got, maxShedRetries+1)
	}
}

// TestWorker503WithoutRetryAfterIsAnError: a bare 503 has no shed
// semantics and must not trigger the backoff loop.
func TestWorker503WithoutRetryAfterIsAnError(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer srv.Close()

	w := shedWorker(t, srv.URL)
	if err := w.get(context.Background(), "/"); err == nil {
		t.Fatal("bare 503 reported success")
	}
	if calls.Load() != 1 {
		t.Fatalf("bare 503 retried: %d calls", calls.Load())
	}
	if w.shed != 0 || w.retried != 0 {
		t.Fatalf("bare 503 counted as shed: %d/%d", w.shed, w.retried)
	}
}

// TestWorkerSkipsShedRetryForUnreplayableBody: a request whose body
// cannot be re-materialized (Body set, GetBody nil) must not be re-issued
// on a shed — the first attempt consumed the body, so a retry would send
// an empty POST.
func TestWorkerSkipsShedRetryForUnreplayableBody(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Retry-After", "0.01")
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer srv.Close()

	w := shedWorker(t, srv.URL)
	req, err := http.NewRequestWithContext(context.Background(), http.MethodPost,
		srv.URL+"/", io.NopCloser(strings.NewReader("payload")))
	if err != nil {
		t.Fatal(err)
	}
	// NewRequest cannot snapshot an opaque ReadCloser: GetBody stays nil.
	if req.GetBody != nil {
		t.Fatal("test premise broken: GetBody set for opaque body")
	}
	if err := w.do(req); err == nil {
		t.Fatal("unreplayable shed reported success")
	}
	if calls.Load() != 1 {
		t.Fatalf("unreplayable request re-issued: %d calls", calls.Load())
	}
	if w.shed != 0 || w.retried != 0 {
		t.Fatalf("unreplayable shed counted as retry: %d/%d", w.shed, w.retried)
	}
}

func TestParseRetryAfter(t *testing.T) {
	cases := []struct {
		in   string
		want time.Duration
		ok   bool
	}{
		{"", 0, false},
		{"1", time.Second, true},
		{"0.5", 500 * time.Millisecond, true},
		{" 2 ", 2 * time.Second, true},
		{"0", 0, true},
		{"-1", 0, false},
		{"Wed, 21 Oct 2026 07:28:00 GMT", 0, false},
		{"nonsense", 0, false},
		{"3600", maxRetryAfter, true}, // capped
	}
	for _, c := range cases {
		got, ok := parseRetryAfter(c.in)
		if got != c.want || ok != c.ok {
			t.Errorf("parseRetryAfter(%q) = (%v, %v), want (%v, %v)", c.in, got, ok, c.want, c.ok)
		}
	}
}
