// Package loadgen drives a running TeaStore over real HTTP with the same
// closed-loop user-behaviour model the simulator uses: each simulated user
// keeps a cookie session, walks the workload profile's Markov chain, and
// thinks between requests. It reports throughput and per-request-type
// latency distributions.
package loadgen

import (
	"context"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/cookiejar"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/db"
	"repro/internal/httpkit"
	"repro/internal/metrics"
	"repro/internal/services/persistence"
	"repro/internal/workload"
)

// Config parameterizes a load run.
type Config struct {
	// WebUIURL is the storefront base URL.
	WebUIURL string
	// PersistenceURL is used once at start-up to discover the catalog.
	PersistenceURL string
	// RegistryURL, when set, lets workers spread sessions across every
	// live webui replica: each new session picks a random replica from the
	// registry's current listing (refreshed about once a second), so webui
	// replicas started at runtime receive traffic without a restart. When
	// empty — or whenever the registry is unreachable or lists no webui —
	// all sessions go to WebUIURL.
	RegistryURL string
	// Profile is the behaviour model; nil means workload.Browse().
	Profile *workload.Profile
	// Users is the closed-loop population.
	Users int
	// Warmup and Duration split the run; only Duration is measured.
	Warmup   time.Duration
	Duration time.Duration
	// ThinkScale multiplies think times (use ~0.01 in tests); 0 means 1.
	ThinkScale float64
	// CatalogUsers is how many demo accounts exist (db.GenerateSpec.Users).
	CatalogUsers int
	Seed         int64
}

// Result is a load run's measurements.
type Result struct {
	// Throughput is measured completed requests per second.
	Throughput float64
	// Latency summarizes all requests.
	Latency metrics.Snapshot
	// PerRequest breaks latency down by request type.
	PerRequest map[workload.Request]metrics.Snapshot
	// Requests and Errors count measured operations.
	Requests int64
	Errors   int64
	// Shed counts 503-with-Retry-After answers — the server declining
	// work under load shedding, distinct from real failures.
	Shed int64
	// Retries counts re-issues after honouring a Retry-After backoff.
	Retries int64
}

// catalog is the discovered store shape.
type catalog struct {
	categoryIDs []int64
	productIDs  []int64
}

// Run executes the configured load and gathers results.
func Run(ctx context.Context, cfg Config) (Result, error) {
	if cfg.WebUIURL == "" || cfg.PersistenceURL == "" {
		return Result{}, fmt.Errorf("loadgen: WebUIURL and PersistenceURL are required")
	}
	if cfg.Users <= 0 {
		return Result{}, fmt.Errorf("loadgen: Users must be positive")
	}
	if cfg.Duration <= 0 {
		return Result{}, fmt.Errorf("loadgen: Duration must be positive")
	}
	if cfg.Profile == nil {
		cfg.Profile = workload.Browse()
	}
	if err := cfg.Profile.Validate(); err != nil {
		return Result{}, err
	}
	if cfg.ThinkScale <= 0 {
		cfg.ThinkScale = 1
	}
	if cfg.CatalogUsers <= 0 {
		cfg.CatalogUsers = db.DefaultGenerateSpec().Users
	}

	cat, err := discover(ctx, cfg.PersistenceURL)
	if err != nil {
		return Result{}, err
	}
	var pool *webuiPool
	if cfg.RegistryURL != "" {
		pool = newWebuiPool(cfg.RegistryURL, cfg.WebUIURL)
	}

	var measuring atomic.Bool
	var errCount atomic.Int64
	workers := make([]*worker, cfg.Users)
	var wg sync.WaitGroup

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	for i := range workers {
		w, err := newWorker(cfg, cat, pool, int64(i), &measuring, &errCount)
		if err != nil {
			return Result{}, err
		}
		workers[i] = w
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.run(runCtx)
		}()
	}

	// Warmup, then measure.
	select {
	case <-time.After(cfg.Warmup):
	case <-ctx.Done():
		cancel()
		wg.Wait()
		return Result{}, ctx.Err()
	}
	measuring.Store(true)
	start := time.Now()
	select {
	case <-time.After(cfg.Duration):
	case <-ctx.Done():
	}
	measuring.Store(false)
	elapsed := time.Since(start)
	cancel()
	wg.Wait()

	// Merge worker histograms.
	res := Result{PerRequest: map[workload.Request]metrics.Snapshot{}}
	var all metrics.Histogram
	var byReq [workload.NumRequests]metrics.Histogram
	for _, w := range workers {
		all.Merge(&w.all)
		for r := range w.byReq {
			byReq[r].Merge(&w.byReq[r])
		}
	}
	res.Latency = all.Snapshot()
	res.Requests = all.Count()
	res.Errors = errCount.Load()
	for _, w := range workers {
		res.Shed += w.shed
		res.Retries += w.retried
	}
	res.Throughput = float64(all.Count()) / elapsed.Seconds()
	for r := range byReq {
		if byReq[r].Count() > 0 {
			res.PerRequest[workload.Request(r)] = byReq[r].Snapshot()
		}
	}
	return res, nil
}

// discover fetches the catalog shape from persistence.
func discover(ctx context.Context, persistenceURL string) (catalog, error) {
	client := persistence.NewClient(persistenceURL, nil)
	cats, err := client.Categories(ctx)
	if err != nil {
		return catalog{}, fmt.Errorf("loadgen: discovering catalog: %w", err)
	}
	if len(cats) == 0 {
		return catalog{}, fmt.Errorf("loadgen: store has no categories — generate the catalog first")
	}
	var out catalog
	for _, c := range cats {
		out.categoryIDs = append(out.categoryIDs, c.ID)
		page, err := client.Products(ctx, c.ID, 0, 50)
		if err != nil {
			return catalog{}, err
		}
		for _, p := range page.Products {
			out.productIDs = append(out.productIDs, p.ID)
		}
	}
	if len(out.productIDs) == 0 {
		return catalog{}, fmt.Errorf("loadgen: store has no products")
	}
	return out, nil
}

// webuiPool resolves live webui replicas through the registry so sessions
// spread across replicas added at runtime. The listing is cached briefly
// and shared by every worker; a failed or empty refresh falls back to the
// configured WebUIURL so a registry outage degrades to single-URL load
// rather than stopping the run.
type webuiPool struct {
	registryURL string
	fallback    string
	client      *httpkit.Client
	ttl         time.Duration

	mu      sync.Mutex
	urls    []string
	fetched time.Time
}

func newWebuiPool(registryURL, fallback string) *webuiPool {
	return &webuiPool{
		registryURL: registryURL,
		fallback:    fallback,
		client:      httpkit.NewClient(2*time.Second, httpkit.WithoutRetries(), httpkit.WithoutBreakers()),
		ttl:         time.Second,
	}
}

// pick returns the webui base URL for one session — a uniformly random
// live replica. Cookie jars are keyed by domain, so a user whose next
// session lands on a different replica keeps their login.
func (p *webuiPool) pick(ctx context.Context, rng *rand.Rand) string {
	p.mu.Lock()
	defer p.mu.Unlock()
	if time.Since(p.fetched) >= p.ttl {
		var addrs []string
		if err := p.client.GetJSON(ctx, p.registryURL+"/services/webui", &addrs); err == nil {
			p.urls = p.urls[:0]
			for _, a := range addrs {
				p.urls = append(p.urls, "http://"+a)
			}
		}
		p.fetched = time.Now()
	}
	if len(p.urls) == 0 {
		return p.fallback
	}
	return p.urls[rng.Intn(len(p.urls))]
}

// worker is one closed-loop user.
type worker struct {
	cfg       Config
	cat       catalog
	pool      *webuiPool
	base      string
	rng       *rand.Rand
	http      *http.Client
	measuring *atomic.Bool
	errCount  *atomic.Int64

	all   metrics.Histogram
	byReq [workload.NumRequests]metrics.Histogram
	// shed and retried are written by this worker's goroutine only and
	// read after the run's WaitGroup barrier.
	shed    int64
	retried int64

	lastProduct int64
	userIdx     int
}

func newWorker(cfg Config, cat catalog, pool *webuiPool, id int64, measuring *atomic.Bool, errCount *atomic.Int64) (*worker, error) {
	jar, err := cookiejar.New(nil)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed*1_000_003 + id))
	return &worker{
		cfg: cfg, cat: cat, pool: pool, base: cfg.WebUIURL, rng: rng,
		http:      &http.Client{Jar: jar, Timeout: 30 * time.Second},
		measuring: measuring, errCount: errCount,
		userIdx: int(id) % cfg.CatalogUsers,
	}, nil
}

// run loops sessions until the context ends.
func (w *worker) run(ctx context.Context) {
	// Stagger start across one think time.
	if !w.sleep(ctx, w.think()) {
		return
	}
	for {
		if w.pool != nil {
			w.base = w.pool.pick(ctx, w.rng)
		}
		walker := workload.NewWalker(w.cfg.Profile, w.rng)
		for {
			req, ok := walker.Next()
			if !ok {
				break
			}
			if ctx.Err() != nil {
				return
			}
			start := time.Now()
			err := w.issue(ctx, req)
			lat := time.Since(start).Nanoseconds()
			if w.measuring.Load() {
				if err != nil {
					w.errCount.Add(1)
				} else {
					w.all.Record(lat)
					w.byReq[req].Record(lat)
				}
			}
			if !w.sleep(ctx, w.think()) {
				return
			}
		}
	}
}

func (w *worker) think() time.Duration {
	median := float64(w.cfg.Profile.ThinkMedian) * w.cfg.ThinkScale
	// Lognormal with the profile's sigma.
	d := time.Duration(median * expApprox(w.rng.NormFloat64()*w.cfg.Profile.ThinkSigma))
	if d < 0 {
		return 0
	}
	return d
}

// expApprox is math.Exp with the tails clamped so a single draw can never
// produce a multi-minute think time.
func expApprox(x float64) float64 {
	if x > 4 {
		x = 4
	}
	if x < -4 {
		x = -4
	}
	return math.Exp(x)
}

func (w *worker) sleep(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	select {
	case <-time.After(d):
		return true
	case <-ctx.Done():
		return false
	}
}

// issue maps one workload request onto HTTP.
func (w *worker) issue(ctx context.Context, req workload.Request) error {
	switch req {
	case workload.ReqHome:
		return w.get(ctx, "/")
	case workload.ReqLogin:
		return w.postForm(ctx, "/login", url.Values{
			"email":    {db.EmailFor(w.userIdx)},
			"password": {db.PasswordFor(w.userIdx)},
		})
	case workload.ReqCategory:
		id := w.cat.categoryIDs[w.rng.Intn(len(w.cat.categoryIDs))]
		page := w.rng.Intn(3)
		return w.get(ctx, fmt.Sprintf("/category/%d?page=%d", id, page))
	case workload.ReqProduct:
		w.lastProduct = w.cat.productIDs[w.rng.Intn(len(w.cat.productIDs))]
		return w.get(ctx, fmt.Sprintf("/product/%d", w.lastProduct))
	case workload.ReqAddToCart:
		id := w.lastProduct
		if id == 0 {
			id = w.cat.productIDs[w.rng.Intn(len(w.cat.productIDs))]
		}
		return w.postForm(ctx, "/cart/add", url.Values{"productId": {strconv.FormatInt(id, 10)}})
	case workload.ReqViewCart:
		return w.get(ctx, "/cart")
	case workload.ReqCheckout:
		return w.postForm(ctx, "/cart/checkout", url.Values{})
	case workload.ReqProfile:
		return w.get(ctx, "/profile")
	case workload.ReqLogout:
		return w.get(ctx, "/logout")
	default:
		return fmt.Errorf("loadgen: unmapped request %v", req)
	}
}

func (w *worker) get(ctx context.Context, path string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, w.base+path, nil)
	if err != nil {
		return err
	}
	return w.do(req)
}

func (w *worker) postForm(ctx context.Context, path string, form url.Values) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.base+path,
		strings.NewReader(form.Encode()))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	return w.do(req)
}

// maxShedRetries bounds how many Retry-After backoffs one request honours
// before the shed counts as a failure.
const maxShedRetries = 2

// maxRetryAfter caps the honoured backoff so a hostile or buggy header
// cannot park a worker for minutes.
const maxRetryAfter = 5 * time.Second

func (w *worker) do(req *http.Request) error {
	for attempt := 0; ; attempt++ {
		if attempt > 0 && req.GetBody != nil {
			body, err := req.GetBody()
			if err != nil {
				return err
			}
			req.Body = body
		}
		resp, err := w.http.Do(req)
		if err != nil {
			return err
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		// A 503 carrying Retry-After is the server shedding load, not
		// failing: honour the backoff and re-issue instead of counting a
		// generic error. A request whose body cannot be replayed
		// (Body set but no GetBody) must not be re-issued — the first
		// attempt already consumed it and the retry would send an empty
		// payload — so it falls through to the generic 5xx error below.
		replayable := req.Body == nil || req.GetBody != nil
		if resp.StatusCode == http.StatusServiceUnavailable && replayable {
			if d, ok := parseRetryAfter(resp.Header.Get("Retry-After")); ok && attempt < maxShedRetries {
				if w.measuring.Load() {
					w.shed++
				}
				if !w.sleep(req.Context(), d) {
					return req.Context().Err()
				}
				if w.measuring.Load() {
					w.retried++
				}
				continue
			}
		}
		// 401 on login-after-expiry etc. counts as an application response,
		// not a load error; 5xx and transport failures are errors.
		if resp.StatusCode >= 500 {
			return fmt.Errorf("loadgen: %s %s → %d", req.Method, req.URL.Path, resp.StatusCode)
		}
		return nil
	}
}

// parseRetryAfter reads a delay-seconds Retry-After value (fractional
// seconds accepted), capped at maxRetryAfter. HTTP-date forms and absent
// headers report false.
func parseRetryAfter(v string) (time.Duration, bool) {
	if v == "" {
		return 0, false
	}
	secs, err := strconv.ParseFloat(strings.TrimSpace(v), 64)
	if err != nil || secs < 0 {
		return 0, false
	}
	d := time.Duration(secs * float64(time.Second))
	if d > maxRetryAfter {
		d = maxRetryAfter
	}
	return d, true
}
