// Package loadgen drives a running TeaStore over real HTTP with the same
// closed-loop user-behaviour model the simulator uses: each simulated user
// keeps a cookie session, walks the workload profile's Markov chain, and
// thinks between requests. It reports throughput and per-request-type
// latency distributions.
package loadgen

import (
	"context"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/cookiejar"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/db"
	"repro/internal/httpkit"
	"repro/internal/metrics"
	"repro/internal/services/persistence"
	"repro/internal/workload"
)

// Config parameterizes a load run.
type Config struct {
	// WebUIURL is the storefront base URL.
	WebUIURL string
	// PersistenceURL is used once at start-up to discover the catalog.
	PersistenceURL string
	// RegistryURL, when set, lets workers spread sessions across every
	// live webui replica: each new session picks a random replica from the
	// registry's current listing (refreshed about once a second), so webui
	// replicas started at runtime receive traffic without a restart. When
	// empty — or whenever the registry is unreachable or lists no webui —
	// all sessions go to WebUIURL.
	RegistryURL string
	// Profile is the behaviour model; nil means workload.Browse().
	Profile *workload.Profile
	// Users is the closed-loop population.
	Users int
	// Warmup and Duration split the run; only Duration is measured.
	Warmup   time.Duration
	Duration time.Duration
	// ThinkScale multiplies think times (use ~0.01 in tests); 0 means 1.
	ThinkScale float64
	// CatalogUsers is how many demo accounts exist (db.GenerateSpec.Users).
	CatalogUsers int
	Seed         int64
	// Timeline records a per-second window breakdown of the measured run
	// (Result.Timeline) — what the gameday harness gates recovery time on.
	Timeline bool
	// RetryIdempotent re-issues failed GETs (transport errors and 5xx) up
	// to twice, re-picking the webui replica when a registry pool is
	// available — the client-side defense that turns a gray replica's
	// failures into latency instead of errors. POSTs are never retried,
	// with one exception: checkout carries a client order ID that makes
	// the submission idempotent end-to-end, so a failed checkout is
	// re-issued on the same key and can never double-place.
	RetryIdempotent bool
	// EjectOutliers makes the webui session pool avoid replicas whose
	// response-time EWMA stands far above their peers', re-admitting them
	// after a probation. Needs RegistryURL.
	EjectOutliers bool
}

// Result is a load run's measurements.
type Result struct {
	// Throughput is measured completed requests per second.
	Throughput float64
	// Latency summarizes all requests.
	Latency metrics.Snapshot
	// PerRequest breaks latency down by request type.
	PerRequest map[workload.Request]metrics.Snapshot
	// Requests and Errors count measured operations.
	Requests int64
	Errors   int64
	// Shed counts 503-with-Retry-After answers — the server declining
	// work under load shedding, distinct from real failures.
	Shed int64
	// Retries counts re-issues after honouring a Retry-After backoff.
	Retries int64
	// IdempotentRetries counts GET re-issues after failures
	// (Config.RetryIdempotent); IdempotentFailures counts GETs that still
	// failed after every retry — the gameday zero-failure gate. Failures
	// are counted whether or not retries are enabled, so defended and
	// undefended runs report on the same scale.
	IdempotentRetries  int64
	IdempotentFailures int64
	// CheckoutRetries counts checkout POST re-issues after failures —
	// safe because every checkout carries a client order ID the
	// persistence plane dedupes on (Config.RetryIdempotent).
	CheckoutRetries int64
	// MeasureStart anchors Timeline in wall-clock time.
	MeasureStart time.Time
	// Timeline is the per-second view of the measured run
	// (Config.Timeline), bucketed by request-start second; the trailing
	// partial window is dropped.
	Timeline []Window
}

// Catalog is the discovered store shape, shared with the open-loop
// engine (internal/openloop) so both drivers issue against the same IDs.
type Catalog struct {
	CategoryIDs []int64
	ProductIDs  []int64
}

// DiscoverCatalog fetches the catalog shape from the persistence service.
func DiscoverCatalog(ctx context.Context, persistenceURL string) (Catalog, error) {
	return discover(ctx, persistenceURL)
}

// Run executes the configured load and gathers results.
func Run(ctx context.Context, cfg Config) (Result, error) {
	if cfg.WebUIURL == "" || cfg.PersistenceURL == "" {
		return Result{}, fmt.Errorf("loadgen: WebUIURL and PersistenceURL are required")
	}
	if cfg.Users <= 0 {
		return Result{}, fmt.Errorf("loadgen: Users must be positive")
	}
	if cfg.Duration <= 0 {
		return Result{}, fmt.Errorf("loadgen: Duration must be positive")
	}
	if cfg.Profile == nil {
		cfg.Profile = workload.Browse()
	}
	if err := cfg.Profile.Validate(); err != nil {
		return Result{}, err
	}
	if cfg.ThinkScale <= 0 {
		cfg.ThinkScale = 1
	}
	if cfg.CatalogUsers <= 0 {
		cfg.CatalogUsers = db.DefaultGenerateSpec().Users
	}

	cat, err := discover(ctx, cfg.PersistenceURL)
	if err != nil {
		return Result{}, err
	}
	var pool *webuiPool
	if cfg.RegistryURL != "" {
		pool = newWebuiPool(cfg.RegistryURL, cfg.WebUIURL, cfg.EjectOutliers)
	}
	var tl *timeline
	if cfg.Timeline {
		tl = &timeline{}
	}

	var measuring atomic.Bool
	var errCount atomic.Int64
	workers := make([]*worker, cfg.Users)
	var wg sync.WaitGroup

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	for i := range workers {
		w, err := newWorker(cfg, cat, pool, tl, int64(i), &measuring, &errCount)
		if err != nil {
			return Result{}, err
		}
		workers[i] = w
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.run(runCtx)
		}()
	}

	// Warmup, then measure.
	select {
	case <-time.After(cfg.Warmup):
	case <-ctx.Done():
		cancel()
		wg.Wait()
		return Result{}, ctx.Err()
	}
	start := time.Now()
	if tl != nil {
		tl.begin(start)
	}
	measuring.Store(true)
	select {
	case <-time.After(cfg.Duration):
	case <-ctx.Done():
	}
	measuring.Store(false)
	elapsed := time.Since(start)
	tl.finish(start.Add(elapsed))
	cancel()
	wg.Wait()

	// Merge worker histograms.
	res := Result{PerRequest: map[workload.Request]metrics.Snapshot{}}
	var all metrics.Histogram
	var byReq [workload.NumRequests]metrics.Histogram
	for _, w := range workers {
		all.Merge(&w.all)
		for r := range w.byReq {
			byReq[r].Merge(&w.byReq[r])
		}
	}
	res.Latency = all.Snapshot()
	res.Requests = all.Count()
	res.Errors = errCount.Load()
	for _, w := range workers {
		res.Shed += w.shed
		res.Retries += w.retried
		res.IdempotentRetries += w.idemRetried
		res.IdempotentFailures += w.idemFailed
		res.CheckoutRetries += w.checkoutRetried
	}
	res.MeasureStart = start
	res.Timeline = tl.windows()
	res.Throughput = float64(all.Count()) / elapsed.Seconds()
	for r := range byReq {
		if byReq[r].Count() > 0 {
			res.PerRequest[workload.Request(r)] = byReq[r].Snapshot()
		}
	}
	return res, nil
}

// discover fetches the catalog shape from persistence.
func discover(ctx context.Context, persistenceURL string) (Catalog, error) {
	client := persistence.NewClient(persistenceURL, nil)
	cats, err := client.Categories(ctx)
	if err != nil {
		return Catalog{}, fmt.Errorf("loadgen: discovering catalog: %w", err)
	}
	if len(cats) == 0 {
		return Catalog{}, fmt.Errorf("loadgen: store has no categories — generate the catalog first")
	}
	var out Catalog
	for _, c := range cats {
		out.CategoryIDs = append(out.CategoryIDs, c.ID)
		page, err := client.Products(ctx, c.ID, 0, 50)
		if err != nil {
			return Catalog{}, err
		}
		for _, p := range page.Products {
			out.ProductIDs = append(out.ProductIDs, p.ID)
		}
	}
	if len(out.ProductIDs) == 0 {
		return Catalog{}, fmt.Errorf("loadgen: store has no products")
	}
	return out, nil
}

// webuiPool resolves live webui replicas through the registry so sessions
// spread across replicas added at runtime. The listing is cached briefly
// and shared by every worker; a failed or empty refresh falls back to the
// configured WebUIURL so a registry outage degrades to single-URL load
// rather than stopping the run. Refreshes run in the background — an
// expired cache serves the stale list instead of making every worker
// queue behind one registry round-trip (or, during a registry outage, a
// 2s timeout).
//
// With ejection on, the pool also tracks a response-time EWMA per
// replica and steers new sessions away from replicas standing far above
// their peers' median, re-admitting them after a probation — the
// open-loop client's analogue of the in-stack balancer's outlier
// ejection.
type webuiPool struct {
	registryURL string
	fallback    string
	client      *httpkit.Client
	ttl         time.Duration
	eject       bool

	mu         sync.Mutex
	urls       []string
	fetched    time.Time
	refreshing bool
	replicas   map[string]*poolReplica
}

// poolReplica is one webui replica's health view inside the pool.
type poolReplica struct {
	samples      int64
	ewma         float64
	ejectedUntil time.Time
}

const (
	// poolMinSamples gates judging a replica on fresh evidence.
	poolMinSamples = 10
	// poolLatencyFactor is the peer-median multiple at which a replica is
	// avoided.
	poolLatencyFactor = 3.0
	// poolMinExcess is the absolute EWMA excess over the peer median an
	// ejection additionally requires — a fast pool's noise (2ms vs 7ms)
	// clears any ratio, so an outlier must also stand out in wall time.
	poolMinExcess = float64(50 * time.Millisecond)
	// poolProbation is how long an avoided replica sits out before fresh
	// traffic may re-admit it.
	poolProbation = 5 * time.Second
	// poolFailurePenalty is the latency a failed request is accounted as,
	// so a replica answering errors quickly still looks unhealthy.
	poolFailurePenalty = float64(time.Second)
)

func newWebuiPool(registryURL, fallback string, eject bool) *webuiPool {
	return &webuiPool{
		registryURL: registryURL,
		fallback:    fallback,
		client:      httpkit.NewClient(2*time.Second, httpkit.WithoutRetries(), httpkit.WithoutBreakers()),
		ttl:         time.Second,
		eject:       eject,
		replicas:    map[string]*poolReplica{},
	}
}

// pick returns the webui base URL for one session — a uniformly random
// live (and, with ejection on, currently-admissible) replica. Cookie
// jars are keyed by domain, so a user whose next session lands on a
// different replica keeps their login.
func (p *webuiPool) pick(ctx context.Context, rng *rand.Rand) string {
	now := time.Now()
	p.mu.Lock()
	if now.Sub(p.fetched) >= p.ttl && !p.refreshing {
		p.refreshing = true
		go p.refresh()
	}
	urls := p.eligible(now)
	var out string
	if len(urls) == 0 {
		out = p.fallback
	} else {
		out = urls[rng.Intn(len(urls))]
	}
	p.mu.Unlock()
	return out
}

// refresh re-resolves the replica listing once, in the background.
func (p *webuiPool) refresh() {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	var addrs []string
	err := p.client.GetJSON(ctx, p.registryURL+"/services/webui", &addrs)
	p.mu.Lock()
	if err == nil {
		p.urls = p.urls[:0]
		for _, a := range addrs {
			p.urls = append(p.urls, "http://"+a)
		}
	}
	p.fetched = time.Now()
	p.refreshing = false
	p.mu.Unlock()
}

// observe feeds one request's outcome into the replica's EWMA. Failures
// are charged a latency penalty so fast errors count against a replica
// as much as slow answers.
func (p *webuiPool) observe(base string, lat time.Duration, failed bool) {
	if p == nil || !p.eject {
		return
	}
	v := float64(lat)
	if failed && v < poolFailurePenalty {
		v = poolFailurePenalty
	}
	p.mu.Lock()
	r := p.replicas[base]
	if r == nil {
		r = &poolReplica{}
		p.replicas[base] = r
	}
	r.samples++
	a := 0.1
	if warm := 1 / float64(r.samples); warm > a {
		a = warm
	}
	r.ewma += (v - r.ewma) * a
	p.mu.Unlock()
}

// eligible returns the replicas sessions may land on: with ejection on,
// replicas whose EWMA stands above poolLatencyFactor× the leave-one-out
// median of their peers sit out a probation (their stats reset, so
// re-admission demands fresh evidence). The whole pool is never ejected.
// Caller holds p.mu.
func (p *webuiPool) eligible(now time.Time) []string {
	if !p.eject || len(p.urls) < 2 {
		return p.urls
	}
	var judged []string
	for _, u := range p.urls {
		if r := p.replicas[u]; r != nil && now.After(r.ejectedUntil) && r.samples >= poolMinSamples {
			judged = append(judged, u)
		}
	}
	if len(judged) >= 2 {
		for _, u := range judged {
			peers := make([]float64, 0, len(judged)-1)
			for _, o := range judged {
				if o != u {
					peers = append(peers, p.replicas[o].ewma)
				}
			}
			base := poolMedian(peers)
			r := p.replicas[u]
			if base > 0 && r.ewma > poolLatencyFactor*base && r.ewma-base > poolMinExcess {
				r.ejectedUntil = now.Add(poolProbation)
				r.samples, r.ewma = 0, 0
			}
		}
	}
	kept := make([]string, 0, len(p.urls))
	for _, u := range p.urls {
		if r := p.replicas[u]; r == nil || !now.Before(r.ejectedUntil) {
			kept = append(kept, u)
		}
	}
	if len(kept) == 0 {
		return p.urls
	}
	return kept
}

// admissible reports whether sessions may keep using base: false once
// the replica has been ejected or dropped from the live listing, so a
// worker mid-session re-picks instead of riding a sick replica until its
// session ends — under a gray failure the sick replica's slow responses
// stretch exactly those sessions the longest. Safe mid-session: cookie
// jars key by host and the replicas differ only by port, so the login
// survives the move.
func (p *webuiPool) admissible(base string) bool {
	if p == nil {
		return true
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.urls) == 0 {
		return true // nothing to re-pick onto
	}
	listed := false
	for _, u := range p.urls {
		if u == base {
			listed = true
			break
		}
	}
	if !listed {
		return false
	}
	if !p.eject {
		return true
	}
	r := p.replicas[base]
	return r == nil || !time.Now().Before(r.ejectedUntil)
}

// poolMedian of a small unsorted slice (sorts its argument).
func poolMedian(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sort.Float64s(xs)
	n := len(xs)
	if n%2 == 1 {
		return xs[n/2]
	}
	return (xs[n/2-1] + xs[n/2]) / 2
}

// worker is one closed-loop user.
type worker struct {
	cfg       Config
	cat       Catalog
	pool      *webuiPool
	tl        *timeline
	base      string
	rng       *rand.Rand
	http      *http.Client
	measuring *atomic.Bool
	errCount  *atomic.Int64

	all   metrics.Histogram
	byReq [workload.NumRequests]metrics.Histogram
	// shed, retried, idemRetried, idemFailed, and checkoutRetried are
	// written by this worker's goroutine only and read after the run's
	// WaitGroup barrier.
	shed            int64
	retried         int64
	idemRetried     int64
	idemFailed      int64
	checkoutRetried int64

	lastProduct int64
	userIdx     int
}

func newWorker(cfg Config, cat Catalog, pool *webuiPool, tl *timeline, id int64, measuring *atomic.Bool, errCount *atomic.Int64) (*worker, error) {
	jar, err := cookiejar.New(nil)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed*1_000_003 + id))
	return &worker{
		cfg: cfg, cat: cat, pool: pool, tl: tl, base: cfg.WebUIURL, rng: rng,
		http:      &http.Client{Jar: jar, Timeout: 30 * time.Second},
		measuring: measuring, errCount: errCount,
		userIdx: int(id) % cfg.CatalogUsers,
	}, nil
}

// run loops sessions until the context ends.
func (w *worker) run(ctx context.Context) {
	// Stagger start across one think time.
	if !w.sleep(ctx, w.think()) {
		return
	}
	for {
		if w.pool != nil {
			w.base = w.pool.pick(ctx, w.rng)
		}
		walker := workload.NewWalker(w.cfg.Profile, w.rng)
		for {
			req, ok := walker.Next()
			if !ok {
				break
			}
			if ctx.Err() != nil {
				return
			}
			if w.pool != nil && !w.pool.admissible(w.base) {
				w.base = w.pool.pick(ctx, w.rng)
			}
			start := time.Now()
			err := w.issue(ctx, req)
			done := time.Now()
			lat := done.Sub(start)
			w.pool.observe(w.base, lat, err != nil)
			if w.measuring.Load() {
				if err != nil {
					w.errCount.Add(1)
					if isIdempotent(req) {
						w.idemFailed++
					}
				} else {
					w.all.Record(lat.Nanoseconds())
					w.byReq[req].Record(lat.Nanoseconds())
				}
				w.tl.record(start, lat.Nanoseconds(), err != nil)
			}
			if !w.sleep(ctx, w.think()) {
				return
			}
		}
	}
}

func (w *worker) think() time.Duration {
	median := float64(w.cfg.Profile.ThinkMedian) * w.cfg.ThinkScale
	// Lognormal with the profile's sigma.
	d := time.Duration(median * expApprox(w.rng.NormFloat64()*w.cfg.Profile.ThinkSigma))
	if d < 0 {
		return 0
	}
	return d
}

// expApprox is math.Exp with the tails clamped so a single draw can never
// produce a multi-minute think time.
func expApprox(x float64) float64 {
	if x > 4 {
		x = 4
	}
	if x < -4 {
		x = -4
	}
	return math.Exp(x)
}

func (w *worker) sleep(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	select {
	case <-time.After(d):
		return true
	case <-ctx.Done():
		return false
	}
}

// issue maps one workload request onto HTTP.
func (w *worker) issue(ctx context.Context, req workload.Request) error {
	switch req {
	case workload.ReqHome:
		return w.get(ctx, "/")
	case workload.ReqLogin:
		return w.postForm(ctx, "/login", url.Values{
			"email":    {db.EmailFor(w.userIdx)},
			"password": {db.PasswordFor(w.userIdx)},
		})
	case workload.ReqCategory:
		id := w.cat.CategoryIDs[w.rng.Intn(len(w.cat.CategoryIDs))]
		page := w.rng.Intn(3)
		return w.get(ctx, fmt.Sprintf("/category/%d?page=%d", id, page))
	case workload.ReqProduct:
		w.lastProduct = w.cat.ProductIDs[w.rng.Intn(len(w.cat.ProductIDs))]
		return w.get(ctx, fmt.Sprintf("/product/%d", w.lastProduct))
	case workload.ReqAddToCart:
		id := w.lastProduct
		if id == 0 {
			id = w.cat.ProductIDs[w.rng.Intn(len(w.cat.ProductIDs))]
		}
		return w.postForm(ctx, "/cart/add", url.Values{"productId": {strconv.FormatInt(id, 10)}})
	case workload.ReqViewCart:
		return w.get(ctx, "/cart")
	case workload.ReqCheckout:
		// A fresh client order ID per logical checkout makes the POST
		// replayable end-to-end: retries of this submission land on the
		// same idempotency key and can never double-place.
		return w.postKeyedForm(ctx, "/cart/checkout",
			url.Values{"clientOrderId": {persistence.NewOrderKey()}})
	case workload.ReqProfile:
		return w.get(ctx, "/profile")
	case workload.ReqLogout:
		return w.get(ctx, "/logout")
	default:
		return fmt.Errorf("loadgen: unmapped request %v", req)
	}
}

func (w *worker) get(ctx context.Context, path string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, w.base+path, nil)
	if err != nil {
		return err
	}
	return w.do(req)
}

func (w *worker) postForm(ctx context.Context, path string, form url.Values) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.base+path,
		strings.NewReader(form.Encode()))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	return w.do(req)
}

// keyedPostCtx marks a POST whose payload carries an idempotency key, so
// retryIdempotent may replay it: the server dedupes on the key instead of
// double-placing. POSTs without the marker get exactly one attempt.
type keyedPostCtx struct{}

// postKeyedForm posts a form that carries its own idempotency key.
func (w *worker) postKeyedForm(ctx context.Context, path string, form url.Values) error {
	return w.postForm(context.WithValue(ctx, keyedPostCtx{}, true), path, form)
}

// maxShedRetries bounds how many Retry-After backoffs one request honours
// before the shed counts as a failure.
const maxShedRetries = 2

// maxIdempotentRetries bounds GET re-issues after real failures
// (Config.RetryIdempotent).
const maxIdempotentRetries = 2

// maxRetryAfter caps the honoured backoff so a hostile or buggy header
// cannot park a worker for minutes.
const maxRetryAfter = 5 * time.Second

func (w *worker) do(req *http.Request) error {
	idemTries := 0
	for attempt := 0; ; attempt++ {
		if attempt > 0 && req.GetBody != nil {
			body, err := req.GetBody()
			if err != nil {
				return err
			}
			req.Body = body
		}
		resp, err := w.http.Do(req)
		if err != nil {
			if w.retryIdempotent(req, &idemTries) {
				continue
			}
			return err
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		// A 503 carrying Retry-After is the server shedding load, not
		// failing: honour the backoff and re-issue instead of counting a
		// generic error. A request whose body cannot be replayed
		// (Body set but no GetBody) must not be re-issued — the first
		// attempt already consumed it and the retry would send an empty
		// payload — so it falls through to the generic 5xx error below.
		replayable := req.Body == nil || req.GetBody != nil
		if resp.StatusCode == http.StatusServiceUnavailable && replayable {
			if d, ok := parseRetryAfter(resp.Header.Get("Retry-After")); ok && attempt < maxShedRetries {
				if w.measuring.Load() {
					w.shed++
					w.tl.recordShed(time.Now())
				}
				if !w.sleep(req.Context(), d) {
					return req.Context().Err()
				}
				if w.measuring.Load() {
					w.retried++
				}
				continue
			}
		}
		// 401 on login-after-expiry etc. counts as an application response,
		// not a load error; 5xx and transport failures are errors.
		if resp.StatusCode >= 500 {
			if w.retryIdempotent(req, &idemTries) {
				continue
			}
			return fmt.Errorf("loadgen: %s %s → %d", req.Method, req.URL.Path, resp.StatusCode)
		}
		return nil
	}
}

// retryIdempotent decides whether a failed request gets another go:
// GETs, plus POSTs marked keyed (the idempotency key in the payload
// makes the replay dedupe server-side instead of double-placing).
// Bounded tries, and — when a registry pool is available — re-picked
// onto a different base URL, because the point of the retry is landing
// somewhere healthier than where the failure came from.
func (w *worker) retryIdempotent(req *http.Request, tries *int) bool {
	if !w.cfg.RetryIdempotent {
		return false
	}
	keyed, _ := req.Context().Value(keyedPostCtx{}).(bool)
	keyed = keyed && req.GetBody != nil
	if req.Method != http.MethodGet && !keyed {
		return false
	}
	if *tries >= maxIdempotentRetries || req.Context().Err() != nil {
		return false
	}
	*tries++
	if w.measuring.Load() {
		if keyed {
			w.checkoutRetried++
		} else {
			w.idemRetried++
		}
	}
	if !w.sleep(req.Context(), time.Duration(*tries)*5*time.Millisecond) {
		return false
	}
	if w.pool != nil {
		if u, err := url.Parse(w.pool.pick(req.Context(), w.rng)); err == nil && u.Host != "" {
			req.URL.Scheme = u.Scheme
			req.URL.Host = u.Host
			req.Host = ""
		}
	}
	return true
}

// isIdempotent reports whether a workload request maps to a safe GET —
// the ones a defended run must never fail.
func isIdempotent(r workload.Request) bool {
	switch r {
	case workload.ReqLogin, workload.ReqAddToCart, workload.ReqCheckout:
		return false
	}
	return true
}

// parseRetryAfter reads a delay-seconds Retry-After value (fractional
// seconds accepted), capped at maxRetryAfter. HTTP-date forms and absent
// headers report false.
func parseRetryAfter(v string) (time.Duration, bool) {
	if v == "" {
		return 0, false
	}
	secs, err := strconv.ParseFloat(strings.TrimSpace(v), 64)
	if err != nil || secs < 0 {
		return 0, false
	}
	d := time.Duration(secs * float64(time.Second))
	if d > maxRetryAfter {
		d = maxRetryAfter
	}
	return d, true
}
