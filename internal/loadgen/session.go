package loadgen

// Exported virtual-session API for the open-loop engine
// (internal/openloop). The closed-loop worker drives itself — walk, issue,
// think, repeat — but an open-loop engine inverts control: *it* decides
// when each session's next request fires, from a global arrival schedule.
// A Session is therefore the worker's browsing machinery (cookie jar,
// Markov position, replica steering, shed/retry handling) with the pacing
// stripped out, and a SessionFactory mints them against one shared
// replica pool so hundreds of thousands of sessions steer with a single
// registry view.

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/db"
	"repro/internal/workload"
)

// Timeline is the exported per-second window recorder, so the open-loop
// engine files its coordinated-omission-safe samples into the same
// request-start windows (with the Offered/Dropped columns) the
// closed-loop generator reports.
type Timeline struct {
	tl timeline
}

// NewTimeline returns an empty timeline.
func NewTimeline() *Timeline { return &Timeline{} }

// Begin anchors the timeline; records before the anchor are dropped.
func (t *Timeline) Begin(at time.Time) { t.tl.begin(at) }

// Finish marks the end; Windows then reports only complete seconds.
func (t *Timeline) Finish(at time.Time) { t.tl.finish(at) }

// Record files one completed request into the window of its intended
// start time.
func (t *Timeline) Record(startedAt time.Time, lat time.Duration, failed bool) {
	t.tl.record(startedAt, lat.Nanoseconds(), failed)
}

// RecordOffered files one intended arrival.
func (t *Timeline) RecordOffered(at time.Time) { t.tl.recordOffered(at) }

// RecordDropped files one undispatchable intended arrival.
func (t *Timeline) RecordDropped(at time.Time) { t.tl.recordDropped(at) }

// Windows snapshots the timeline.
func (t *Timeline) Windows() []Window { return t.tl.windows() }

// SessionCounters is one session's cumulative defense bookkeeping,
// counted only while the factory is measuring.
type SessionCounters struct {
	// Shed counts 503+Retry-After answers; Retries the re-issues after
	// honouring their backoff.
	Shed    int64
	Retries int64
	// IdempotentRetries / IdempotentFailures / CheckoutRetries mirror the
	// closed-loop Result fields of the same names.
	IdempotentRetries  int64
	IdempotentFailures int64
	CheckoutRetries    int64
}

// SessionFactory mints Sessions sharing one replica pool, catalog, and
// measurement gate. The factory reuses Config, honouring WebUIURL,
// RegistryURL, Profile, ThinkScale, CatalogUsers, Seed, RetryIdempotent,
// and EjectOutliers; pacing fields (Users, Warmup, Duration) are the
// engine's business and ignored here.
type SessionFactory struct {
	cfg  Config
	cat  Catalog
	pool *webuiPool
	tl   *Timeline

	measuring atomic.Bool
	errSink   atomic.Int64
	next      atomic.Int64
}

// NewSessionFactory validates the config and prepares the shared pool.
// tl may be nil; when set, sheds observed inside retry handling are filed
// into it.
func NewSessionFactory(cfg Config, cat Catalog, tl *Timeline) (*SessionFactory, error) {
	if cfg.WebUIURL == "" {
		return nil, fmt.Errorf("loadgen: WebUIURL is required")
	}
	if cfg.Profile == nil {
		cfg.Profile = workload.Browse()
	}
	if err := cfg.Profile.Validate(); err != nil {
		return nil, err
	}
	if cfg.ThinkScale <= 0 {
		cfg.ThinkScale = 1
	}
	if cfg.CatalogUsers <= 0 {
		cfg.CatalogUsers = db.DefaultGenerateSpec().Users
	}
	if len(cat.CategoryIDs) == 0 || len(cat.ProductIDs) == 0 {
		return nil, fmt.Errorf("loadgen: session factory needs a discovered catalog")
	}
	f := &SessionFactory{cfg: cfg, cat: cat, tl: tl}
	if cfg.RegistryURL != "" {
		f.pool = newWebuiPool(cfg.RegistryURL, cfg.WebUIURL, cfg.EjectOutliers)
	}
	return f, nil
}

// SetMeasuring toggles the counter gate shared by every session.
func (f *SessionFactory) SetMeasuring(on bool) { f.measuring.Store(on) }

// New mints one session: a fresh cookie jar and Markov walk, landed on a
// replica picked from the shared pool.
func (f *SessionFactory) New() (*Session, error) {
	id := f.next.Add(1) - 1
	var tl *timeline
	if f.tl != nil {
		tl = &f.tl.tl
	}
	w, err := newWorker(f.cfg, f.cat, f.pool, tl, id, &f.measuring, &f.errSink)
	if err != nil {
		return nil, err
	}
	if f.pool != nil {
		w.base = f.pool.pick(context.Background(), w.rng)
	}
	return &Session{w: w, walker: workload.NewWalker(f.cfg.Profile, w.rng)}, nil
}

// Session is one virtual storefront user under external pacing. A
// session is owned by one goroutine at a time (hand it off through a
// channel or mutex); it is not safe for concurrent calls.
type Session struct {
	w      *worker
	walker *workload.Walker
}

// Next advances the Markov walk; ok=false means the walk ended (logout
// or bounce) and the session should be retired.
func (s *Session) Next() (workload.Request, bool) { return s.walker.Next() }

// Think draws one think time from the profile (scaled by ThinkScale) —
// the gap before this session may carry its next request.
func (s *Session) Think() time.Duration { return s.w.think() }

// Issue performs one request over the session's connection: re-picks the
// replica if the current one has been ejected or delisted, issues with
// the worker's full shed/retry handling, and feeds the outcome back into
// the pool's health view.
func (s *Session) Issue(ctx context.Context, req workload.Request) error {
	if s.w.pool != nil && !s.w.pool.admissible(s.w.base) {
		s.w.base = s.w.pool.pick(ctx, s.w.rng)
	}
	start := time.Now()
	err := s.w.issue(ctx, req)
	s.w.pool.observe(s.w.base, time.Since(start), err != nil)
	if err != nil && s.w.measuring.Load() && isIdempotent(req) {
		s.w.idemFailed++
	}
	return err
}

// Counters snapshots the session's bookkeeping. Call only while the
// session is quiescent (no Issue in flight).
func (s *Session) Counters() SessionCounters {
	return SessionCounters{
		Shed:               s.w.shed,
		Retries:            s.w.retried,
		IdempotentRetries:  s.w.idemRetried,
		IdempotentFailures: s.w.idemFailed,
		CheckoutRetries:    s.w.checkoutRetried,
	}
}
