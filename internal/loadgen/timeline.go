package loadgen

// Windowed per-second load timeline: the gameday harness needs to see
// *when* latency degraded and recovered, not just the run's aggregate —
// a fault injected mid-run and cleared before the end is invisible in
// whole-run percentiles but obvious in the per-second windows.
//
// Windows bucket by request *start* second. A request that stalls for
// two seconds is pain suffered by the window that issued it, not by the
// window it happened to finish in — completion-time bucketing smeared a
// stall forward onto innocent windows and credited the stalled window as
// healthy. The open-loop engine reuses the same Window type with the
// Offered and Dropped columns filled in.

import (
	"sync"
	"time"

	"repro/internal/metrics"
)

// Window is one second of the measured run, keyed by request-start time.
// Latency percentiles cover successful requests only; Requests counts
// every completed operation including failures, so error bursts don't
// masquerade as quiet seconds.
type Window struct {
	// Second is the window's offset from Result.MeasureStart.
	Second   int   `json:"second"`
	Requests int64 `json:"requests"`
	Errors   int64 `json:"errors"`
	Shed     int64 `json:"shed"`
	// Offered counts intended arrivals scheduled into this window — the
	// open-loop engine's demand axis. Closed-loop runs leave it zero
	// (a closed loop has no arrival schedule independent of completions).
	Offered int64 `json:"offered,omitempty"`
	// Dropped counts intended arrivals the open-loop engine could not
	// dispatch because its connection pool was exhausted. Never silently
	// skipped: a drop is demand the stack did not even get to refuse.
	Dropped int64 `json:"dropped,omitempty"`
	// P50Ns and P99Ns are the window's latency percentiles in
	// nanoseconds (0 when the window saw no successful request).
	P50Ns int64 `json:"p50Ns"`
	P99Ns int64 `json:"p99Ns"`
}

// P99 returns the window's p99 as a duration.
func (w Window) P99() time.Duration { return time.Duration(w.P99Ns) }

// P50 returns the window's p50 as a duration.
func (w Window) P50() time.Duration { return time.Duration(w.P50Ns) }

// timeline accumulates per-second histograms across all workers. One
// mutex is plenty: a load run completes a few thousand requests per
// second at most, far below contention territory.
type timeline struct {
	mu    sync.Mutex
	start time.Time
	end   time.Time
	slots []*timeslot
}

type timeslot struct {
	hist    metrics.Histogram
	errors  int64
	shed    int64
	offered int64
	dropped int64
}

// begin anchors the timeline at the measurement start; records arriving
// before begin are dropped.
func (t *timeline) begin(at time.Time) {
	t.mu.Lock()
	t.start = at
	t.end = time.Time{}
	t.slots = t.slots[:0]
	t.mu.Unlock()
}

// finish marks the measurement end. windows() then reports only the
// complete seconds: the trailing partial window holds a biased sample
// (only the requests that started in its fraction of a second) and, fed
// into gating, skews the final-window p99 on every run whose duration
// isn't an exact whole second.
func (t *timeline) finish(at time.Time) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.end = at
	t.mu.Unlock()
}

// slot returns (growing the run as needed) the window containing at.
// Caller holds t.mu.
func (t *timeline) slot(at time.Time) *timeslot {
	if t.start.IsZero() {
		return nil
	}
	idx := int(at.Sub(t.start) / time.Second)
	if idx < 0 {
		return nil
	}
	for len(t.slots) <= idx {
		t.slots = append(t.slots, &timeslot{})
	}
	return t.slots[idx]
}

// record files one completed request into the window of its *start*
// time. Failed requests count but contribute no latency sample.
func (t *timeline) record(startedAt time.Time, latNs int64, failed bool) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if s := t.slot(startedAt); s != nil {
		if failed {
			s.errors++
		} else {
			s.hist.Record(latNs)
		}
	}
	t.mu.Unlock()
}

// recordShed files one load-shed (503 + Retry-After) into at's window.
func (t *timeline) recordShed(at time.Time) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if s := t.slot(at); s != nil {
		s.shed++
	}
	t.mu.Unlock()
}

// recordOffered files one intended arrival into its scheduled window.
func (t *timeline) recordOffered(at time.Time) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if s := t.slot(at); s != nil {
		s.offered++
	}
	t.mu.Unlock()
}

// recordDropped files one undispatchable intended arrival.
func (t *timeline) recordDropped(at time.Time) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if s := t.slot(at); s != nil {
		s.dropped++
	}
	t.mu.Unlock()
}

// windows snapshots the timeline as one Window per complete elapsed
// second. When finish was called, the trailing partial window (and any
// starts recorded beyond it) is dropped; without it every recorded slot
// is reported.
func (t *timeline) windows() []Window {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := len(t.slots)
	if !t.end.IsZero() {
		if full := int(t.end.Sub(t.start) / time.Second); full < n {
			n = full
		}
	}
	if n < 0 {
		n = 0
	}
	out := make([]Window, n)
	for i, s := range t.slots[:n] {
		out[i] = Window{
			Second:   i,
			Requests: s.hist.Count() + s.errors,
			Errors:   s.errors,
			Shed:     s.shed,
			Offered:  s.offered,
			Dropped:  s.dropped,
			P50Ns:    s.hist.Percentile(50),
			P99Ns:    s.hist.Percentile(99),
		}
	}
	return out
}
