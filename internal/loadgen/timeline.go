package loadgen

// Windowed per-second load timeline: the gameday harness needs to see
// *when* latency degraded and recovered, not just the run's aggregate —
// a fault injected mid-run and cleared before the end is invisible in
// whole-run percentiles but obvious in the per-second windows.

import (
	"sync"
	"time"

	"repro/internal/metrics"
)

// Window is one second of the measured run. Latency percentiles cover
// successful requests only; Requests counts every completed operation
// including failures, so error bursts don't masquerade as quiet seconds.
type Window struct {
	// Second is the window's offset from Result.MeasureStart.
	Second   int   `json:"second"`
	Requests int64 `json:"requests"`
	Errors   int64 `json:"errors"`
	Shed     int64 `json:"shed"`
	// P50Ns and P99Ns are the window's latency percentiles in
	// nanoseconds (0 when the window saw no successful request).
	P50Ns int64 `json:"p50Ns"`
	P99Ns int64 `json:"p99Ns"`
}

// P99 returns the window's p99 as a duration.
func (w Window) P99() time.Duration { return time.Duration(w.P99Ns) }

// P50 returns the window's p50 as a duration.
func (w Window) P50() time.Duration { return time.Duration(w.P50Ns) }

// timeline accumulates per-second histograms across all workers. One
// mutex is plenty: a load run completes a few thousand requests per
// second at most, far below contention territory.
type timeline struct {
	mu    sync.Mutex
	start time.Time
	slots []*timeslot
}

type timeslot struct {
	hist   metrics.Histogram
	errors int64
	shed   int64
}

// begin anchors the timeline at the measurement start; records arriving
// before begin are dropped.
func (t *timeline) begin(at time.Time) {
	t.mu.Lock()
	t.start = at
	t.slots = t.slots[:0]
	t.mu.Unlock()
}

// slot returns (growing the run as needed) the window containing at.
// Caller holds t.mu.
func (t *timeline) slot(at time.Time) *timeslot {
	if t.start.IsZero() {
		return nil
	}
	idx := int(at.Sub(t.start) / time.Second)
	if idx < 0 {
		return nil
	}
	for len(t.slots) <= idx {
		t.slots = append(t.slots, &timeslot{})
	}
	return t.slots[idx]
}

// record files one completed request into the window of its completion
// time. Failed requests count but contribute no latency sample.
func (t *timeline) record(at time.Time, latNs int64, failed bool) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if s := t.slot(at); s != nil {
		if failed {
			s.errors++
		} else {
			s.hist.Record(latNs)
		}
	}
	t.mu.Unlock()
}

// recordShed files one load-shed (503 + Retry-After) into at's window.
func (t *timeline) recordShed(at time.Time) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if s := t.slot(at); s != nil {
		s.shed++
	}
	t.mu.Unlock()
}

// windows snapshots the timeline as one Window per elapsed second.
func (t *timeline) windows() []Window {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Window, len(t.slots))
	for i, s := range t.slots {
		out[i] = Window{
			Second:   i,
			Requests: s.hist.Count() + s.errors,
			Errors:   s.errors,
			Shed:     s.shed,
			P50Ns:    s.hist.Percentile(50),
			P99Ns:    s.hist.Percentile(99),
		}
	}
	return out
}
