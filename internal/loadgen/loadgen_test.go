package loadgen_test

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/db"
	"repro/internal/httpkit"
	"repro/internal/loadgen"
	"repro/internal/scalectl"
	"repro/internal/teastore"
	"repro/internal/workload"
)

func startStack(t *testing.T) *teastore.Stack {
	t.Helper()
	st, err := teastore.Start(teastore.Config{
		Catalog: db.GenerateSpec{
			Categories: 2, ProductsPerCategory: 8, Users: 4, SeedOrders: 20, Seed: 3,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		st.Shutdown(ctx)
	})
	return st
}

func TestRunAgainstRealStack(t *testing.T) {
	st := startStack(t)
	res, err := loadgen.Run(context.Background(), loadgen.Config{
		WebUIURL:       st.WebUIURL,
		PersistenceURL: st.PersistenceURL,
		Users:          8,
		Warmup:         200 * time.Millisecond,
		Duration:       2 * time.Second,
		ThinkScale:     0.02,
		CatalogUsers:   4,
		Seed:           1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests == 0 || res.Throughput <= 0 {
		t.Fatalf("no load delivered: %+v", res)
	}
	if res.Errors > res.Requests/10 {
		t.Fatalf("error rate too high: %d errors of %d requests", res.Errors, res.Requests)
	}
	if res.Latency.P99 < res.Latency.P50 {
		t.Fatal("latency percentiles inverted")
	}
	// The browse profile must exercise several distinct flows. Exact type
	// coverage in a short window is timing-dependent (the race detector
	// slows PNG rendering ~20×), so only diversity is asserted.
	if len(res.PerRequest) < 2 {
		t.Fatalf("only %d request types issued: %v", len(res.PerRequest), res.PerRequest)
	}
	_ = workload.ReqHome
}

// TestFetchBreakdown runs a short load, then collects the per-service
// latency table through the registry exactly like `loadgen -registry`.
func TestFetchBreakdown(t *testing.T) {
	st := startStack(t)
	if _, err := loadgen.Run(context.Background(), loadgen.Config{
		WebUIURL:       st.WebUIURL,
		PersistenceURL: st.PersistenceURL,
		Users:          4,
		Warmup:         100 * time.Millisecond,
		Duration:       time.Second,
		ThinkScale:     0.02,
		CatalogUsers:   4,
		Seed:           1,
	}); err != nil {
		t.Fatal(err)
	}
	tab, err := loadgen.FetchBreakdown(context.Background(), st.RegistryURL)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 {
		t.Fatalf("breakdown has %d rows, want 6:\n%s", len(tab.Rows), tab.String())
	}
	rendered := tab.String()
	for _, svc := range []string{"auth", "image", "persistence", "recommender", "registry", "webui"} {
		if !strings.Contains(rendered, svc) {
			t.Fatalf("breakdown missing %s:\n%s", svc, rendered)
		}
	}
}

// TestFetchBreakdownAutoscaleColumn: against a stack running the scale-up
// control plane, the breakdown's autoscale column reports the controlled
// service's replica state while uncontrolled services show "-". The plain
// TestFetchBreakdown above covers the no-reconciler stack, where every
// row shows "-".
func TestFetchBreakdownAutoscaleColumn(t *testing.T) {
	st, err := teastore.Start(teastore.Config{
		Catalog: db.GenerateSpec{
			Categories: 2, ProductsPerCategory: 8, Users: 4, SeedOrders: 20, Seed: 3,
		},
		Autoscale: &scalectl.Config{
			Interval: time.Hour, // observe state only; no churn during the test
			Services: map[string]scalectl.Bounds{"image": {Min: 1, Max: 2}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		st.Shutdown(ctx)
	})
	tab, err := loadgen.FetchBreakdown(context.Background(), st.RegistryURL)
	if err != nil {
		t.Fatal(err)
	}
	col := -1
	for i, h := range tab.Headers {
		if h == "autoscale" {
			col = i
		}
	}
	if col < 0 {
		t.Fatalf("breakdown has no autoscale column: %v", tab.Headers)
	}
	var imageCell string
	for _, row := range tab.Rows {
		switch row[0] {
		case "image":
			imageCell = row[col]
		case "webui":
			if row[col] != "-" {
				t.Errorf("uncontrolled webui has autoscale cell %q, want -", row[col])
			}
		}
	}
	if imageCell == "" || imageCell == "-" {
		t.Fatalf("controlled image service has autoscale cell %q, want replica state:\n%s", imageCell, tab.String())
	}
}

// TestRunSpreadsAcrossWebUIReplicas: with RegistryURL set, sessions pick
// among all live webui replicas, so a replica started at runtime receives
// load without restarting the generator.
func TestRunSpreadsAcrossWebUIReplicas(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second load run")
	}
	st := startStack(t)
	if err := st.StartReplica("webui"); err != nil {
		t.Fatal(err)
	}
	if _, err := loadgen.Run(context.Background(), loadgen.Config{
		WebUIURL:       st.WebUIURL,
		PersistenceURL: st.PersistenceURL,
		RegistryURL:    st.RegistryURL,
		Users:          6,
		Warmup:         100 * time.Millisecond,
		Duration:       1500 * time.Millisecond,
		ThinkScale:     0.02,
		CatalogUsers:   4,
		Seed:           5,
	}); err != nil {
		t.Fatal(err)
	}
	urls := st.ReplicaURLs("webui")
	if len(urls) != 2 {
		t.Fatalf("stack has %d webui replicas, want 2", len(urls))
	}
	hc := httpkit.NewClient(2 * time.Second)
	for _, url := range urls {
		var snap httpkit.MetricsSnapshot
		if err := hc.GetJSON(context.Background(), url+"/metrics.json", &snap); err != nil {
			t.Fatal(err)
		}
		if snap.Requests == 0 {
			t.Errorf("webui replica %s received no requests", url)
		}
	}
}

func TestRunValidation(t *testing.T) {
	ctx := context.Background()
	cases := []loadgen.Config{
		{},
		{WebUIURL: "http://x", PersistenceURL: "", Users: 1, Duration: time.Second},
		{WebUIURL: "http://x", PersistenceURL: "http://y", Users: 0, Duration: time.Second},
		{WebUIURL: "http://x", PersistenceURL: "http://y", Users: 1, Duration: 0},
	}
	for i, cfg := range cases {
		if _, err := loadgen.Run(ctx, cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestRunFailsOnEmptyStore(t *testing.T) {
	st := startStack(t)
	st.Store.Reset()
	_, err := loadgen.Run(context.Background(), loadgen.Config{
		WebUIURL:       st.WebUIURL,
		PersistenceURL: st.PersistenceURL,
		Users:          1,
		Duration:       time.Second,
	})
	if err == nil {
		t.Fatal("empty store accepted")
	}
}

func TestRunHonoursContextCancel(t *testing.T) {
	st := startStack(t)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := loadgen.Run(ctx, loadgen.Config{
		WebUIURL:       st.WebUIURL,
		PersistenceURL: st.PersistenceURL,
		Users:          2,
		Warmup:         10 * time.Second, // cancel should cut this short
		Duration:       10 * time.Second,
		ThinkScale:     0.05,
	})
	if err == nil {
		t.Fatal("cancelled run reported success")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("cancel did not stop the run promptly")
	}
}
