package loadgen

import (
	"testing"
	"time"
)

// A 2-second server stall must be charged to the windows that *issued*
// the stalled requests. Under the old completion-time bucketing, requests
// issued at second 0 and stalled until second 2 piled their pain into
// window 2 — the stalled window itself read as healthy, and the recovery
// window read as the disaster.
func TestTimelineStallChargedToStartWindow(t *testing.T) {
	tl := &timeline{}
	start := time.Now()
	tl.begin(start)

	// Healthy traffic in window 0...
	for i := 0; i < 50; i++ {
		tl.record(start.Add(time.Duration(i)*10*time.Millisecond), int64(10*time.Millisecond), false)
	}
	// ...plus requests issued late in window 0 that stall for 2 seconds
	// (they complete during window 2 — irrelevant: the start second owns
	// them).
	for i := 0; i < 20; i++ {
		tl.record(start.Add(900*time.Millisecond), int64(2*time.Second), false)
	}
	// Window 2 itself sees only fast post-recovery traffic.
	for i := 0; i < 50; i++ {
		tl.record(start.Add(2*time.Second+time.Duration(i)*10*time.Millisecond), int64(10*time.Millisecond), false)
	}
	tl.finish(start.Add(3 * time.Second))

	ws := tl.windows()
	if len(ws) != 3 {
		t.Fatalf("got %d windows, want 3", len(ws))
	}
	if ws[0].P99() < time.Second {
		t.Fatalf("stall window p99 = %v, want ≥1s — the stall's pain belongs to the window that issued it", ws[0].P99())
	}
	if ws[2].P99() > 100*time.Millisecond {
		t.Fatalf("recovery window p99 = %v, want fast — completion-time bucketing leaked the stall forward", ws[2].P99())
	}
	if ws[0].Requests != 70 || ws[2].Requests != 50 {
		t.Fatalf("window requests = %d/%d, want 70/50", ws[0].Requests, ws[2].Requests)
	}
}

// The trailing partial window holds a biased fraction of a second and
// must not reach gating; without finish (old callers, mid-run snapshots)
// every slot is still reported.
func TestTimelineDropsTrailingPartialWindow(t *testing.T) {
	tl := &timeline{}
	start := time.Now()
	tl.begin(start)
	tl.record(start.Add(500*time.Millisecond), int64(5*time.Millisecond), false)
	tl.record(start.Add(1500*time.Millisecond), int64(5*time.Millisecond), false)
	tl.record(start.Add(2200*time.Millisecond), int64(900*time.Millisecond), false) // partial window's skew

	if got := len(tl.windows()); got != 3 {
		t.Fatalf("unfinished timeline reports %d windows, want all 3", got)
	}
	tl.finish(start.Add(2400 * time.Millisecond)) // run measured 2.4s → 2 complete windows
	ws := tl.windows()
	if len(ws) != 2 {
		t.Fatalf("finished timeline reports %d windows, want 2 complete ones", len(ws))
	}
	for _, w := range ws {
		if w.P99() > 100*time.Millisecond {
			t.Fatalf("complete window %d p99 = %v includes the partial window's sample", w.Second, w.P99())
		}
	}
}

// Offered and dropped arrivals land in their scheduled windows — the
// open-loop engine's offered-vs-served axis.
func TestTimelineOfferedAndDropped(t *testing.T) {
	tl := &timeline{}
	start := time.Now()
	tl.begin(start)
	for i := 0; i < 7; i++ {
		tl.recordOffered(start.Add(100 * time.Millisecond))
	}
	tl.recordDropped(start.Add(200 * time.Millisecond))
	tl.record(start.Add(300*time.Millisecond), int64(time.Millisecond), false)
	tl.finish(start.Add(time.Second))
	ws := tl.windows()
	if len(ws) != 1 {
		t.Fatalf("got %d windows, want 1", len(ws))
	}
	if ws[0].Offered != 7 || ws[0].Dropped != 1 || ws[0].Requests != 1 {
		t.Fatalf("window = %+v, want offered 7, dropped 1, requests 1", ws[0])
	}
}
