package desim

import "testing"

func TestTickerZeroPeriodPanics(t *testing.T) {
	e := New()
	defer func() {
		if recover() == nil {
			t.Error("zero-period ticker did not panic")
		}
	}()
	e.Ticker(0, func() {})
}

func TestTickerCancelFromWithinCallback(t *testing.T) {
	e := New()
	count := 0
	var cancel func()
	cancel = e.Ticker(Millisecond, func() {
		count++
		if count == 2 {
			cancel()
		}
	})
	e.RunFor(10 * Millisecond)
	if count != 2 {
		t.Fatalf("count = %d, want 2 (self-cancel)", count)
	}
}

func TestCancelledEventIDState(t *testing.T) {
	e := New()
	id := e.After(Millisecond, func() {})
	if id.Cancelled() {
		t.Fatal("pending event reports cancelled")
	}
	e.Cancel(id)
	if !id.Cancelled() {
		t.Fatal("cancelled event reports live")
	}
	if (EventID{}).Cancelled() != true {
		t.Fatal("zero EventID should read as cancelled")
	}
}

func TestPendingCountsLiveEvents(t *testing.T) {
	e := New()
	a := e.After(Millisecond, func() {})
	e.After(2*Millisecond, func() {})
	if e.Pending() != 2 {
		t.Fatalf("Pending = %d", e.Pending())
	}
	e.Cancel(a)
	if e.Pending() != 1 {
		t.Fatalf("Pending after cancel = %d", e.Pending())
	}
}
