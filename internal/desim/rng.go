package desim

import (
	"hash/fnv"
	"math"
	"math/rand"
)

// RNG is a named deterministic random stream. Distinct model components ask
// the engine's RNGPool for distinct streams so that adding randomness to one
// component never perturbs another — a requirement for meaningful A/B
// comparisons between simulator configurations.
type RNG struct {
	*rand.Rand
}

// Exp draws an exponentially distributed duration with the given mean.
func (r RNG) Exp(mean Duration) Duration {
	if mean <= 0 {
		return 0
	}
	d := Duration(r.ExpFloat64() * float64(mean))
	if d < 0 {
		return 0
	}
	return d
}

// LogNormal draws a log-normally distributed duration with the given median
// and sigma (shape). Service demands are long-tailed; lognormal captures
// that with two intuitive parameters.
func (r RNG) LogNormal(median Duration, sigma float64) Duration {
	if median <= 0 {
		return 0
	}
	x := math.Exp(r.NormFloat64()*sigma) * float64(median)
	if x >= math.MaxInt64 {
		return Duration(math.MaxInt64)
	}
	return Duration(x)
}

// Uniform draws a duration uniformly from [lo, hi).
func (r RNG) Uniform(lo, hi Duration) Duration {
	if hi <= lo {
		return lo
	}
	return lo + Duration(r.Int63n(int64(hi-lo)))
}

// Pick returns an index in [0, len(weights)) with probability proportional
// to the weights. All-zero or empty weights return 0.
func (r RNG) Pick(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return 0
	}
	x := r.Float64() * total
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// RNGPool hands out independent named random streams derived from a single
// master seed.
//
// Seed contract: a stream's output is a pure function of (master seed,
// stream name) — stable across runs, processes, and platforms, because
// each stream is math/rand's fixed generator seeded with an FNV-1a +
// splitmix mix of the two. Together with the engine's FIFO tie-break for
// same-instant events and its single-threaded execution, this makes any
// model built on the kernel a deterministic function of its master seed:
// two runs with the same seed produce byte-identical event traces and
// results. Consequences for model code:
//
//   - Request a stream once and keep it; re-requesting the same name
//     restarts the stream from its beginning.
//   - Adding a NEW named stream never perturbs draws on existing
//     streams; renaming a stream, or borrowing draws from another
//     component's stream, changes every downstream sample.
//   - Iteration order over maps must never decide draw order; schedule
//     events instead (the engine fires same-instant events FIFO).
//
// The determinism regression test (determinism_test.go) locks the
// contract in; the cross-validation harness relies on it so simulated
// sweeps are exactly reproducible from a recorded seed.
type RNGPool struct {
	seed uint64
}

// NewRNGPool returns a pool keyed by the master seed.
func NewRNGPool(seed int64) *RNGPool { return &RNGPool{seed: uint64(seed)} }

// Stream returns the deterministic stream for name. Calling Stream twice
// with the same name returns two streams with identical future output, so
// components should request a stream once and keep it.
func (p *RNGPool) Stream(name string) RNG {
	h := fnv.New64a()
	h.Write([]byte(name))
	// splitmix-style final mix so nearby seeds decorrelate.
	z := p.seed ^ h.Sum64()
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return RNG{rand.New(rand.NewSource(int64(z)))}
}
