package desim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGStreamIndependence(t *testing.T) {
	p := NewRNGPool(42)
	a := p.Stream("a")
	b := p.Stream("b")
	same := 0
	for i := 0; i < 100; i++ {
		if a.Int63() == b.Int63() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("streams 'a' and 'b' produced %d identical draws", same)
	}
}

func TestRNGStreamReproducible(t *testing.T) {
	x := NewRNGPool(7).Stream("svc").Int63()
	y := NewRNGPool(7).Stream("svc").Int63()
	if x != y {
		t.Fatalf("same pool+name diverged: %d vs %d", x, y)
	}
	z := NewRNGPool(8).Stream("svc").Int63()
	if x == z {
		t.Fatal("different seeds produced identical first draw")
	}
}

func TestExpMeanRoughlyCorrect(t *testing.T) {
	r := NewRNGPool(1).Stream("exp")
	const n = 20000
	mean := 10 * Millisecond
	var sum float64
	for i := 0; i < n; i++ {
		sum += float64(r.Exp(mean))
	}
	got := sum / n
	want := float64(mean)
	if math.Abs(got-want)/want > 0.05 {
		t.Fatalf("Exp sample mean = %v, want within 5%% of %v", Duration(got), mean)
	}
}

func TestExpNonPositiveMean(t *testing.T) {
	r := NewRNGPool(1).Stream("exp")
	if r.Exp(0) != 0 || r.Exp(-5) != 0 {
		t.Fatal("Exp of non-positive mean should be 0")
	}
}

func TestLogNormalMedian(t *testing.T) {
	r := NewRNGPool(2).Stream("ln")
	const n = 20001
	samples := make([]Duration, n)
	for i := range samples {
		samples[i] = r.LogNormal(5*Millisecond, 0.5)
	}
	// Median check: count below the target median.
	below := 0
	for _, s := range samples {
		if s < 5*Millisecond {
			below++
		}
	}
	frac := float64(below) / n
	if frac < 0.47 || frac > 0.53 {
		t.Fatalf("fraction below median = %.3f, want ~0.5", frac)
	}
}

func TestUniformBounds(t *testing.T) {
	r := NewRNGPool(3).Stream("u")
	for i := 0; i < 1000; i++ {
		d := r.Uniform(2*Millisecond, 4*Millisecond)
		if d < 2*Millisecond || d >= 4*Millisecond {
			t.Fatalf("Uniform out of range: %v", d)
		}
	}
	if r.Uniform(5, 5) != 5 {
		t.Fatal("degenerate Uniform should return lo")
	}
}

func TestPickDistribution(t *testing.T) {
	r := NewRNGPool(4).Stream("pick")
	weights := []float64{1, 0, 3}
	counts := make([]int, 3)
	const n = 30000
	for i := 0; i < n; i++ {
		counts[r.Pick(weights)]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight index picked %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if ratio < 2.7 || ratio > 3.3 {
		t.Fatalf("weight ratio = %.2f, want ~3", ratio)
	}
}

func TestPickDegenerate(t *testing.T) {
	r := NewRNGPool(5).Stream("pick")
	if r.Pick(nil) != 0 {
		t.Fatal("Pick(nil) != 0")
	}
	if r.Pick([]float64{0, 0}) != 0 {
		t.Fatal("Pick(all zero) != 0")
	}
}

func TestResourceImmediateGrant(t *testing.T) {
	e := New()
	r := NewResource(e, 2)
	granted := 0
	r.Acquire(func() { granted++ })
	r.Acquire(func() { granted++ })
	if granted != 2 || r.InUse() != 2 {
		t.Fatalf("granted=%d inUse=%d, want 2,2", granted, r.InUse())
	}
	if r.Utilization() != 1.0 {
		t.Fatalf("utilization = %v, want 1", r.Utilization())
	}
}

func TestResourceQueuesFIFO(t *testing.T) {
	e := New()
	r := NewResource(e, 1)
	var order []int
	r.Acquire(func() {})
	for i := 0; i < 5; i++ {
		i := i
		r.Acquire(func() { order = append(order, i) })
	}
	if r.Queued() != 5 {
		t.Fatalf("Queued = %d, want 5", r.Queued())
	}
	for i := 0; i < 5; i++ {
		r.Release()
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("grant order[%d] = %d, want %d", i, v, i)
		}
	}
}

func TestResourceBoundedQueue(t *testing.T) {
	e := New()
	r := NewResource(e, 1)
	r.MaxQueue = 2
	r.Acquire(func() {})
	if !r.Acquire(func() {}) || !r.Acquire(func() {}) {
		t.Fatal("queue slots rejected")
	}
	if r.Acquire(func() {}) {
		t.Fatal("over-bound acquire accepted")
	}
}

func TestResourceReleaseIdlePanics(t *testing.T) {
	e := New()
	r := NewResource(e, 1)
	defer func() {
		if recover() == nil {
			t.Error("release of idle resource did not panic")
		}
	}()
	r.Release()
}

func TestResourceZeroCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero capacity did not panic")
		}
	}()
	NewResource(New(), 0)
}

// Property: grants never exceed capacity, and every queued acquire is
// eventually granted after enough releases.
func TestPropertyResourceConservation(t *testing.T) {
	f := func(capRaw uint8, nRaw uint8) bool {
		capacity := int(capRaw%8) + 1
		n := int(nRaw%64) + 1
		e := New()
		r := NewResource(e, capacity)
		granted := 0
		for i := 0; i < n; i++ {
			r.Acquire(func() { granted++ })
			if r.InUse() > capacity {
				return false
			}
		}
		// Drain: release until idle.
		for r.InUse() > 0 {
			r.Release()
		}
		return granted == n && r.Queued() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
