package desim

import (
	"bytes"
	"fmt"
	"testing"
)

// queueTrace runs a small M/G/2 queueing model — Poisson-ish arrivals
// into a capacity-2 resource with lognormal service — and logs every
// event into a byte trace. The model exercises the pieces the seed
// contract (rng.go) promises determinism over: named RNG streams,
// same-instant FIFO tie-breaks, resource grant order, and the clock.
func queueTrace(seed int64) []byte {
	var buf bytes.Buffer
	eng := New()
	pool := NewRNGPool(seed)
	arrivals := pool.Stream("arrivals")
	service := pool.Stream("service")
	res := NewResource(eng, 2)

	const jobs = 200
	started := 0
	var arrive func()
	arrive = func() {
		if started >= jobs {
			return
		}
		started++
		id := started
		fmt.Fprintf(&buf, "%d arrive %d queued=%d\n", int64(eng.Now()), id, res.Queued())
		res.Acquire(func() {
			fmt.Fprintf(&buf, "%d start %d inuse=%d\n", int64(eng.Now()), id, res.InUse())
			eng.After(service.LogNormal(3*Millisecond, 0.7), func() {
				fmt.Fprintf(&buf, "%d done %d\n", int64(eng.Now()), id)
				res.Release()
			})
		})
		eng.After(arrivals.Exp(Millisecond), arrive)
	}
	eng.After(0, arrive)
	eng.Run()
	fmt.Fprintf(&buf, "fired=%d end=%d\n", eng.Fired(), int64(eng.Now()))
	return buf.Bytes()
}

// TestSeededRunsAreByteIdentical is the determinism regression test: two
// runs with the same master seed must produce byte-identical event
// traces and results, and a different seed must actually change them.
func TestSeededRunsAreByteIdentical(t *testing.T) {
	a := queueTrace(42)
	b := queueTrace(42)
	if !bytes.Equal(a, b) {
		line := 0
		al, bl := bytes.Split(a, []byte("\n")), bytes.Split(b, []byte("\n"))
		for i := 0; i < len(al) && i < len(bl); i++ {
			if !bytes.Equal(al[i], bl[i]) {
				line = i
				break
			}
		}
		t.Fatalf("same seed diverged at trace line %d:\n  run1: %s\n  run2: %s",
			line, al[line], bl[line])
	}
	if c := queueTrace(43); bytes.Equal(a, c) {
		t.Fatal("different seeds produced identical traces — the seed is being ignored")
	}
}
