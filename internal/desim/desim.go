// Package desim provides a deterministic discrete-event simulation kernel.
//
// The kernel is callback based rather than goroutine based: every piece of
// simulated activity is an event — a function scheduled to run at a point in
// virtual time. Events scheduled for the same instant fire in scheduling
// order, which together with seeded random streams makes every run fully
// reproducible.
//
// Virtual time is measured in nanoseconds and exposed as the Time type; the
// zero Engine starts at time 0.
package desim

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"time"
)

// Time is a point in virtual time, in nanoseconds since the start of the
// simulation.
type Time int64

// Duration is a span of virtual time in nanoseconds. It converts freely to
// and from time.Duration.
type Duration int64

// Common durations, mirroring the time package for readable model code.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// FromStd converts a time.Duration to a simulation Duration.
func FromStd(d time.Duration) Duration { return Duration(d.Nanoseconds()) }

// Std converts a simulation Duration to a time.Duration.
func (d Duration) Std() time.Duration { return time.Duration(d) }

// Seconds reports the duration as a floating-point number of seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// String formats the duration using time.Duration notation.
func (d Duration) String() string { return time.Duration(d).String() }

// DurationOf converts a floating-point number of seconds to a Duration,
// saturating rather than overflowing for absurd inputs.
func DurationOf(seconds float64) Duration {
	ns := seconds * float64(Second)
	if ns >= math.MaxInt64 {
		return Duration(math.MaxInt64)
	}
	if ns <= math.MinInt64 {
		return Duration(math.MinInt64)
	}
	return Duration(ns)
}

// Add returns the time d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration between two instants.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds reports the instant as seconds since simulation start.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats the instant as an offset from simulation start.
func (t Time) String() string { return time.Duration(t).String() }

// An event is a callback bound to an instant. seq breaks ties so that
// same-instant events fire in FIFO order.
type event struct {
	at   Time
	seq  uint64
	fn   func()
	dead bool
	idx  int
}

// EventID identifies a scheduled event so it can be cancelled.
type EventID struct{ ev *event }

// Cancelled reports whether the event was cancelled (or already fired and
// then cancelled, which is a no-op).
func (id EventID) Cancelled() bool { return id.ev == nil || id.ev.dead }

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.idx = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	ev.idx = -1
	return ev
}

// Engine is a discrete-event simulation executive. It is not safe for
// concurrent use; a simulation is a single-threaded deterministic program.
type Engine struct {
	now     Time
	seq     uint64
	events  eventHeap
	running bool
	stopped bool
	fired   uint64
}

// New returns an Engine starting at time zero.
func New() *Engine { return &Engine{} }

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Fired reports how many events have executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending reports how many events are scheduled but not yet fired.
func (e *Engine) Pending() int { return len(e.events) }

// ErrPastEvent is returned (via panic recovery in tests) when an event is
// scheduled before the current time.
var ErrPastEvent = errors.New("desim: event scheduled in the past")

// At schedules fn to run at the absolute instant t. Scheduling in the past
// panics: that is always a model bug.
func (e *Engine) At(t Time, fn func()) EventID {
	if t < e.now {
		panic(fmt.Errorf("%w: at=%v now=%v", ErrPastEvent, t, e.now))
	}
	ev := &event{at: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.events, ev)
	return EventID{ev}
}

// After schedules fn to run d from now. Negative delays panic.
func (e *Engine) After(d Duration, fn func()) EventID {
	if d < 0 {
		panic(fmt.Errorf("%w: delay=%v now=%v", ErrPastEvent, d, e.now))
	}
	return e.At(e.now.Add(d), fn)
}

// Cancel removes a scheduled event. Cancelling an event that already fired
// or was already cancelled is a no-op. Cancel reports whether the event was
// actually removed.
func (e *Engine) Cancel(id EventID) bool {
	ev := id.ev
	if ev == nil || ev.dead || ev.idx < 0 {
		return false
	}
	ev.dead = true
	heap.Remove(&e.events, ev.idx)
	return true
}

// Stop makes Run return after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// Step fires the single earliest pending event, advancing the clock to it.
// It reports whether an event fired.
func (e *Engine) Step() bool {
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(*event)
		if ev.dead {
			continue
		}
		e.now = ev.at
		e.fired++
		ev.fn()
		return true
	}
	return false
}

// Run fires events until no events remain, Stop is called, or the next
// event would fire after the until instant. The clock is left at the last
// fired event's time (or advanced to until when RunUntil semantics require
// it — see RunUntil).
func (e *Engine) Run() {
	e.runCore(Time(math.MaxInt64), false)
}

// RunUntil fires all events scheduled at or before t, then advances the
// clock to exactly t. Events at t fire; events after t remain pending.
func (e *Engine) RunUntil(t Time) {
	e.runCore(t, true)
	if !e.stopped && e.now < t {
		e.now = t
	}
}

// RunFor is RunUntil(Now()+d).
func (e *Engine) RunFor(d Duration) { e.RunUntil(e.now.Add(d)) }

func (e *Engine) runCore(until Time, bounded bool) {
	if e.running {
		panic("desim: Run called re-entrantly from inside an event")
	}
	e.running = true
	e.stopped = false
	defer func() { e.running = false }()
	for !e.stopped {
		// Peek without popping so a too-late head event stays queued.
		var head *event
		for len(e.events) > 0 && e.events[0].dead {
			heap.Pop(&e.events)
		}
		if len(e.events) == 0 {
			return
		}
		head = e.events[0]
		if bounded && head.at > until {
			return
		}
		heap.Pop(&e.events)
		e.now = head.at
		e.fired++
		head.fn()
	}
}

// Ticker invokes fn every period until cancel is called or the engine
// drains. fn runs first after one full period.
func (e *Engine) Ticker(period Duration, fn func()) (cancel func()) {
	if period <= 0 {
		panic("desim: non-positive ticker period")
	}
	stopped := false
	var tick func()
	var id EventID
	tick = func() {
		if stopped {
			return
		}
		fn()
		if !stopped {
			id = e.After(period, tick)
		}
	}
	id = e.After(period, tick)
	return func() {
		stopped = true
		e.Cancel(id)
	}
}
