package desim

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestEngineStartsAtZero(t *testing.T) {
	e := New()
	if e.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", e.Now())
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending() = %d, want 0", e.Pending())
	}
}

func TestAfterAdvancesClock(t *testing.T) {
	e := New()
	var fired Time = -1
	e.After(5*Millisecond, func() { fired = e.Now() })
	e.Run()
	if fired != Time(5*Millisecond) {
		t.Fatalf("fired at %v, want 5ms", fired)
	}
	if e.Now() != Time(5*Millisecond) {
		t.Fatalf("clock at %v, want 5ms", e.Now())
	}
}

func TestSameInstantFIFO(t *testing.T) {
	e := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(Time(Millisecond), func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("order[%d] = %d, want %d (events at same instant must fire FIFO)", i, v, i)
		}
	}
}

func TestPastSchedulingPanics(t *testing.T) {
	e := New()
	e.After(Millisecond, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(0, func() {})
	})
	e.Run()
}

func TestNegativeDelayPanics(t *testing.T) {
	e := New()
	defer func() {
		if recover() == nil {
			t.Error("negative delay did not panic")
		}
	}()
	e.After(-1, func() {})
}

func TestCancel(t *testing.T) {
	e := New()
	fired := false
	id := e.After(Millisecond, func() { fired = true })
	if !e.Cancel(id) {
		t.Fatal("Cancel returned false for pending event")
	}
	if e.Cancel(id) {
		t.Fatal("second Cancel returned true")
	}
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestCancelFiredEventIsNoop(t *testing.T) {
	e := New()
	id := e.After(Millisecond, func() {})
	e.Run()
	if e.Cancel(id) {
		t.Fatal("Cancel of already-fired event returned true")
	}
}

func TestRunUntilBoundary(t *testing.T) {
	e := New()
	var at5, at10 bool
	e.After(5*Millisecond, func() { at5 = true })
	e.After(10*Millisecond, func() { at10 = true })
	e.RunUntil(Time(7 * Millisecond))
	if !at5 || at10 {
		t.Fatalf("at5=%v at10=%v, want true,false", at5, at10)
	}
	if e.Now() != Time(7*Millisecond) {
		t.Fatalf("clock = %v, want 7ms", e.Now())
	}
	// Event exactly at the boundary fires.
	e.RunUntil(Time(10 * Millisecond))
	if !at10 {
		t.Fatal("event at boundary instant did not fire")
	}
}

func TestRunForAccumulates(t *testing.T) {
	e := New()
	count := 0
	cancel := e.Ticker(Millisecond, func() { count++ })
	e.RunFor(10 * Millisecond)
	if count != 10 {
		t.Fatalf("ticks = %d, want 10", count)
	}
	cancel()
	e.RunFor(10 * Millisecond)
	if count != 10 {
		t.Fatalf("ticks after cancel = %d, want 10", count)
	}
}

func TestStop(t *testing.T) {
	e := New()
	count := 0
	e.Ticker(Millisecond, func() {
		count++
		if count == 3 {
			e.Stop()
		}
	})
	e.Run()
	if count != 3 {
		t.Fatalf("count = %d, want 3 (Stop should halt Run)", count)
	}
}

func TestStep(t *testing.T) {
	e := New()
	n := 0
	e.After(Millisecond, func() { n++ })
	e.After(2*Millisecond, func() { n++ })
	if !e.Step() {
		t.Fatal("Step returned false with pending events")
	}
	if n != 1 {
		t.Fatalf("n = %d after one step, want 1", n)
	}
	if !e.Step() || e.Step() {
		t.Fatal("Step sequence wrong")
	}
	if e.Fired() != 2 {
		t.Fatalf("Fired() = %d, want 2", e.Fired())
	}
}

func TestReentrantRunPanics(t *testing.T) {
	e := New()
	e.After(Millisecond, func() {
		defer func() {
			if recover() == nil {
				t.Error("re-entrant Run did not panic")
			}
		}()
		e.Run()
	})
	e.Run()
}

// Property: events always fire in non-decreasing time order, regardless of
// the order they were scheduled in.
func TestPropertyMonotonicFiring(t *testing.T) {
	f := func(seed int64, raw []uint16) bool {
		e := New()
		rng := rand.New(rand.NewSource(seed))
		var fireTimes []Time
		for _, r := range raw {
			at := Time(r) * Time(Microsecond)
			// Schedule from a random mix of At and nested After.
			if rng.Intn(2) == 0 {
				e.At(at, func() { fireTimes = append(fireTimes, e.Now()) })
			} else {
				e.At(at, func() {
					e.After(Duration(rng.Intn(1000)), func() {
						fireTimes = append(fireTimes, e.Now())
					})
				})
			}
		}
		e.Run()
		for i := 1; i < len(fireTimes); i++ {
			if fireTimes[i] < fireTimes[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: identical seeds produce identical event traces.
func TestPropertyDeterminism(t *testing.T) {
	run := func(seed int64) []Time {
		e := New()
		rng := NewRNGPool(seed).Stream("load")
		var trace []Time
		var spawn func()
		spawn = func() {
			trace = append(trace, e.Now())
			if len(trace) < 500 {
				e.After(rng.Exp(Millisecond)+1, spawn)
			}
		}
		e.After(0, spawn)
		e.Run()
		return trace
	}
	f := func(seed int64) bool {
		a, b := run(seed), run(seed)
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestDurationConversions(t *testing.T) {
	if FromStd(3*time.Millisecond) != 3*Millisecond {
		t.Fatal("FromStd mismatch")
	}
	if (2 * Second).Std() != 2*time.Second {
		t.Fatal("Std mismatch")
	}
	if got := (1500 * Millisecond).Seconds(); got != 1.5 {
		t.Fatalf("Seconds() = %v, want 1.5", got)
	}
	if DurationOf(0.25) != 250*Millisecond {
		t.Fatalf("DurationOf(0.25) = %v", DurationOf(0.25))
	}
	if DurationOf(1e300) <= 0 {
		t.Fatal("DurationOf overflow not saturated")
	}
	if Time(5*Second).Sub(Time(2*Second)) != 3*Second {
		t.Fatal("Time.Sub mismatch")
	}
}
