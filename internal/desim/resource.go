package desim

// Resource is a counted resource with a FIFO wait queue: the discrete-event
// analogue of a semaphore. Grants happen inline (as part of the releasing
// event) so acquisition order is deterministic.
type Resource struct {
	eng      *Engine
	capacity int
	inUse    int
	waiters  fifo
	// MaxQueue, when > 0, bounds the wait queue; Acquire beyond it fails.
	MaxQueue int
}

type waiter struct{ grant func() }

// fifo is an amortized O(1) queue of waiters.
type fifo struct {
	head, tail []waiter
}

func (q *fifo) push(w waiter) { q.tail = append(q.tail, w) }
func (q *fifo) len() int      { return len(q.head) + len(q.tail) }
func (q *fifo) pop() (waiter, bool) {
	if len(q.head) == 0 {
		if len(q.tail) == 0 {
			return waiter{}, false
		}
		// Reverse tail into head.
		q.head = q.head[:0]
		for i := len(q.tail) - 1; i >= 0; i-- {
			q.head = append(q.head, q.tail[i])
		}
		q.tail = q.tail[:0]
	}
	w := q.head[len(q.head)-1]
	q.head = q.head[:len(q.head)-1]
	return w, true
}

// NewResource returns a resource with the given capacity managed by eng.
func NewResource(eng *Engine, capacity int) *Resource {
	if capacity <= 0 {
		panic("desim: resource capacity must be positive")
	}
	return &Resource{eng: eng, capacity: capacity}
}

// Capacity returns the resource's total units.
func (r *Resource) Capacity() int { return r.capacity }

// InUse returns the units currently held.
func (r *Resource) InUse() int { return r.inUse }

// Queued returns the number of waiting acquisitions.
func (r *Resource) Queued() int { return r.waiters.len() }

// Acquire requests one unit. grant runs immediately (synchronously) if a
// unit is free, otherwise when one is released. Acquire reports false if
// the wait queue is bounded and full, in which case grant will never run.
func (r *Resource) Acquire(grant func()) bool {
	if r.inUse < r.capacity {
		r.inUse++
		grant()
		return true
	}
	if r.MaxQueue > 0 && r.waiters.len() >= r.MaxQueue {
		return false
	}
	r.waiters.push(waiter{grant: grant})
	return true
}

// Release returns one unit, handing it to the oldest waiter if any.
func (r *Resource) Release() {
	if r.inUse <= 0 {
		panic("desim: release of idle resource")
	}
	if w, ok := r.waiters.pop(); ok {
		// Unit passes directly to the waiter; inUse is unchanged.
		w.grant()
		return
	}
	r.inUse--
}

// Utilization returns the fraction of capacity currently in use.
func (r *Resource) Utilization() float64 {
	return float64(r.inUse) / float64(r.capacity)
}
