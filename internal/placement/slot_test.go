package placement

import (
	"math"
	"testing"

	"repro/internal/topology"
)

// assign is a test helper: run n Assign calls for service, accumulating
// the slot list, failing the test on error.
func assign(t *testing.T, p Policy, service string, n int, existing []Slot) []Slot {
	t.Helper()
	slots := append([]Slot(nil), existing...)
	for i := 0; i < n; i++ {
		s, err := p.Assign(service, slots)
		if err != nil {
			t.Fatalf("Assign(%s) #%d: %v", service, i, err)
		}
		slots = append(slots, s)
	}
	return slots
}

func caps(slots []Slot, mach *topology.Machine, capPerCore int) []int {
	out := make([]int, len(slots))
	for i, s := range slots {
		out[i] = SlotCap(s, slots, mach, capPerCore)
	}
	return out
}

// The worked example behind the sweep: on the Small machine (2 CCX ×
// 4 cores, SMT2) three webui replicas at 3 cores each. Packed wraps and
// straddles — replica 2 spans both CCXs, replica 3 wraps onto replica
// 1's first core — so its caps decay [5,4,3]. CCX-aware replicas stay
// inside one L3 domain each and total strictly more admission capacity.
func TestPackedVsCCXWorkedExample(t *testing.T) {
	mach := topology.Small()

	packed, err := NewPolicy("packed", mach, nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	ps := assign(t, packed, "webui", 3, nil)
	wantCells := []int{0, 3, 6}
	for i, s := range ps {
		if s.Cell != wantCells[i] {
			t.Fatalf("packed replica %d first core = %d, want %d", i, s.Cell, wantCells[i])
		}
		if s.Level != topology.LevelCore || s.Policy != "packed" || s.Budget != 3 {
			t.Fatalf("packed replica %d slot = %+v", i, s)
		}
	}
	pCaps := caps(ps, mach, 2)
	if pCaps[0] != 5 || pCaps[1] != 4 || pCaps[2] != 3 {
		t.Fatalf("packed caps = %v, want [5 4 3]", pCaps)
	}

	ccx, err := NewPolicy("ccx", mach, nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	cs := assign(t, ccx, "webui", 3, nil)
	if cs[0].Cell != 0 || cs[1].Cell != 1 || cs[2].Cell != 0 {
		t.Fatalf("ccx cells = [%d %d %d], want alternating [0 1 0]",
			cs[0].Cell, cs[1].Cell, cs[2].Cell)
	}
	for i, s := range cs {
		if s.Level != topology.LevelCCX {
			t.Fatalf("ccx replica %d level = %v", i, s.Level)
		}
		if got := s.CPUs.Count(); got != 8 {
			t.Fatalf("ccx replica %d affinity %d CPUs, want the whole 8-CPU cell", i, got)
		}
	}
	cCaps := caps(cs, mach, 2)

	sum := func(xs []int) int {
		n := 0
		for _, x := range xs {
			n += x
		}
		return n
	}
	if sum(cCaps) <= sum(pCaps) {
		t.Fatalf("ccx total cap %v = %d not above packed %v = %d",
			cCaps, sum(cCaps), pCaps, sum(pCaps))
	}
}

// Cell contention is weighted by demand share: a cell holding only the
// ~0 % registry is less contended than one holding a webui replica.
func TestCellContentionWeighting(t *testing.T) {
	mach := topology.Small()
	p, err := NewPolicy("ccx", mach, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	existing := assign(t, p, "webui", 1, nil) // → cell 0
	existing = append(existing, Slot{
		Service: "registry", Policy: "ccx", Level: topology.LevelCCX,
		Cell: 1, CPUs: mach.CPUsOfCCX(1), Budget: 2,
	})
	s, err := p.Assign("auth", existing)
	if err != nil {
		t.Fatal(err)
	}
	if s.Cell != 1 {
		t.Fatalf("auth placed in cell %d; want 1 (registry's share is lighter than webui's)", s.Cell)
	}
}

// A straddling slot contributes to each cell proportionally to overlap,
// not fully to both.
func TestStraddlingSlotSplitsContention(t *testing.T) {
	mach := topology.Small()
	p, err := NewPolicy("ccx", mach, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	straddler := Slot{
		Service: "webui", Policy: "packed", Level: topology.LevelCore, Cell: 2,
		CPUs: topology.NewCPUSet(2, 3, 4, 5, 10, 11, 12, 13), Budget: 4,
	}
	// Cell 0 additionally holds a whole-cell image replica; cell 1 only
	// sees half the straddler, so it must win.
	existing := []Slot{straddler, {
		Service: "image", Policy: "ccx", Level: topology.LevelCCX,
		Cell: 0, CPUs: mach.CPUsOfCCX(0), Budget: 4,
	}}
	s, err := p.Assign("auth", existing)
	if err != nil {
		t.Fatal(err)
	}
	if s.Cell != 1 {
		t.Fatalf("auth placed in cell %d, want 1", s.Cell)
	}
}

func TestNUMAPolicySpreadsAcrossNodes(t *testing.T) {
	mach := topology.Rome2S()
	p, err := NewPolicy("numa", mach, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	slots := assign(t, p, "webui", 2, nil)
	if slots[0].Cell == slots[1].Cell {
		t.Fatalf("two webui replicas share NUMA node %d", slots[0].Cell)
	}
	for i, s := range slots {
		if s.Level != topology.LevelNUMA {
			t.Fatalf("replica %d level = %v, want numa", i, s.Level)
		}
	}
}

func TestPackedAssignIsOrderInsensitive(t *testing.T) {
	mach := topology.Small()
	p, err := NewPolicy("packed", mach, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	a := assign(t, p, "webui", 2, nil)
	// The packed cursor is Σ budgets of live slots, so permuting the
	// existing list cannot move the next assignment.
	next1, err := p.Assign("auth", []Slot{a[0], a[1]})
	if err != nil {
		t.Fatal(err)
	}
	next2, err := p.Assign("auth", []Slot{a[1], a[0]})
	if err != nil {
		t.Fatal(err)
	}
	if next1.Cell != next2.Cell || !next1.CPUs.Equal(next2.CPUs) {
		t.Fatalf("packed assignment depends on slot order: %v vs %v", next1, next2)
	}
}

func TestEffectiveCoresStraddlePenalty(t *testing.T) {
	mach := topology.Small()
	inside := Slot{Service: "webui", CPUs: topology.NewCPUSet(0, 1, 8, 9), Budget: 2}
	across := Slot{Service: "webui", CPUs: topology.NewCPUSet(3, 4, 11, 12), Budget: 2}
	in := EffectiveCores(inside, []Slot{inside}, mach)
	out := EffectiveCores(across, []Slot{across}, mach)
	if math.Abs(in-2) > 1e-9 {
		t.Fatalf("uncontended in-CCX slot effective cores = %v, want 2", in)
	}
	want := 2 / (1 + StraddlePenalty)
	if math.Abs(out-want) > 1e-9 {
		t.Fatalf("straddling slot effective cores = %v, want %v", out, want)
	}
}

func TestSlotCapNeverBelowOne(t *testing.T) {
	mach := topology.Small()
	// Eight 1-core slots all stacked on core 0: fair share 1/8 each.
	var all []Slot
	for i := 0; i < 8; i++ {
		all = append(all, Slot{Service: "webui", CPUs: topology.NewCPUSet(0, 8), Budget: 1})
	}
	if got := SlotCap(all[0], all, mach, 2); got != 1 {
		t.Fatalf("overcommitted slot cap = %d, want floor of 1", got)
	}
}

func TestNewPolicyErrors(t *testing.T) {
	mach := topology.Small()
	if _, err := NewPolicy("packed", nil, nil, 2); err == nil {
		t.Fatal("nil machine accepted")
	}
	if _, err := NewPolicy("spiral", mach, nil, 2); err == nil {
		t.Fatal("unknown policy accepted")
	}
	if _, err := NewPolicy("ccx", mach, nil, mach.NumCores()+1); err == nil {
		t.Fatal("slot budget larger than the machine accepted")
	}
}

func TestSlotLabelFormat(t *testing.T) {
	mach := topology.Small()
	s := Slot{
		Service: "webui", Policy: "ccx", Level: topology.LevelCCX,
		Cell: 1, CPUs: mach.CPUsOfCCX(1), Budget: 3,
	}
	if got, want := s.Label(), "ccx:1/4-7,12-15"; got != want {
		t.Fatalf("Label() = %q, want %q", got, want)
	}
}

func TestDefaultNamedShares(t *testing.T) {
	shares := DefaultNamedShares()
	total := 0.0
	for _, name := range []string{"webui", "auth", "persistence", "recommender", "image", "registry"} {
		w, ok := shares[name]
		if !ok || w <= 0 {
			t.Fatalf("share for %s missing or non-positive: %v", name, w)
		}
		total += w
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("shares sum to %v, want 1", total)
	}
}
