package placement

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
	"repro/internal/topology"
)

func TestNormalize(t *testing.T) {
	s := Shares{sim.WebUI: 2, sim.Auth: 2, sim.Image: -1}
	n := s.Normalize()
	if n[sim.WebUI] != 0.5 || n[sim.Auth] != 0.5 {
		t.Fatalf("normalize wrong: %v", n)
	}
	if _, ok := n[sim.Image]; ok {
		t.Fatal("negative share survived normalize")
	}
	if len(Shares{}.Normalize()) != 0 {
		t.Fatal("empty normalize should be empty")
	}
}

func TestOSDefaultValidates(t *testing.T) {
	mach := topology.Rome1S()
	d := OSDefault(mach)
	if err := d.Validate(mach); err != nil {
		t.Fatal(err)
	}
	for _, s := range sim.AllServices() {
		if d.Replicas(s) != 1 {
			t.Fatalf("os-default replicas of %v = %d, want 1", s, d.Replicas(s))
		}
	}
}

func TestTunedReplicasScaleWithShares(t *testing.T) {
	mach := topology.Rome1S()
	r := TunedReplicas(mach, DefaultShares(), 8)
	if r[sim.WebUI] < r[sim.Auth] {
		t.Fatalf("webui replicas (%d) should be ≥ auth (%d)", r[sim.WebUI], r[sim.Auth])
	}
	if r[sim.Registry] != 1 {
		t.Fatal("registry must have exactly 1 replica")
	}
	for s, n := range r {
		if n < 1 {
			t.Fatalf("service %v got %d replicas", s, n)
		}
	}
	d := Tuned(mach, DefaultShares(), 8)
	if err := d.Validate(mach); err != nil {
		t.Fatal(err)
	}
	// Tuned is unpinned.
	for _, inst := range d.Instances {
		if !inst.Affinity.Empty() {
			t.Fatal("tuned deployment must be unpinned")
		}
	}
}

func TestPackedPinsEverything(t *testing.T) {
	mach := topology.Rome1S()
	d := Packed(mach, DefaultShares(), 8)
	if err := d.Validate(mach); err != nil {
		t.Fatal(err)
	}
	var union topology.CPUSet
	for _, inst := range d.Instances {
		if inst.Affinity.Empty() {
			t.Fatalf("packed instance of %v unpinned", inst.Service)
		}
		if !inst.Affinity.Intersect(union).Empty() {
			t.Fatalf("packed affinities overlap at %v", inst.Service)
		}
		union = union.Union(inst.Affinity)
		if inst.Workers <= 0 {
			t.Fatal("bad worker count")
		}
	}
	if union.Count() != mach.NumCPUs() {
		t.Fatalf("packed covers %d CPUs of %d", union.Count(), mach.NumCPUs())
	}
}

func TestCellsPerCCD(t *testing.T) {
	mach := topology.Rome1S() // 8 CCDs
	d, err := Cells(mach, DefaultShares(), CellPerCCD)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(mach); err != nil {
		t.Fatal(err)
	}
	// One replica of each non-registry service per CCD.
	for _, s := range []sim.Service{sim.WebUI, sim.Auth, sim.Persistence, sim.Recommender, sim.Image} {
		if got := d.Replicas(s); got != mach.NumCCDs() {
			t.Fatalf("%v replicas = %d, want %d (one per CCD)", s, got, mach.NumCCDs())
		}
	}
	if d.Replicas(sim.Registry) != 1 {
		t.Fatal("registry must have 1 replica")
	}
	// Each instance stays inside one CCD and homes its memory locally.
	for _, inst := range d.Instances {
		ccds := map[int]bool{}
		nodes := map[int]bool{}
		inst.Affinity.ForEach(func(id int) {
			ccds[mach.CPU(id).CCD] = true
			nodes[mach.CPU(id).NUMA] = true
		})
		if len(ccds) != 1 {
			t.Fatalf("%v instance spans %d CCDs", inst.Service, len(ccds))
		}
		for n := range nodes {
			if n != inst.HomeNUMA {
				t.Fatalf("%v instance homes on node %d but runs on node %d", inst.Service, inst.HomeNUMA, n)
			}
		}
	}
}

func TestCellsPerNUMAAndSocket(t *testing.T) {
	mach := topology.Rome1SNPS4()
	d, err := Cells(mach, DefaultShares(), CellPerNUMA)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(mach); err != nil {
		t.Fatal(err)
	}
	if d.Replicas(sim.WebUI) != 4 {
		t.Fatalf("NPS4 cells → 4 webui replicas, got %d", d.Replicas(sim.WebUI))
	}

	two := topology.Rome2S()
	d2, err := Cells(two, DefaultShares(), CellPerSocket)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Replicas(sim.WebUI) != 2 {
		t.Fatalf("2-socket cells → 2 webui replicas, got %d", d2.Replicas(sim.WebUI))
	}
}

func TestCellsTooSmallFails(t *testing.T) {
	// 2-core CCDs cannot host 5 services.
	tiny := topology.MustNew(topology.Config{
		Name: "tiny", Sockets: 1, CCDsPerSocket: 2, CCXsPerCCD: 1,
		CoresPerCCX: 2, ThreadsPerCore: 2, NUMAPerSocket: 1,
		L3PerCCX: 16 << 20, BaseGHz: 2, BoostGHz: 3,
	})
	if _, err := Cells(tiny, DefaultShares(), CellPerCCD); err == nil {
		t.Fatal("undersized cells accepted")
	}
}

func TestApportion(t *testing.T) {
	got := apportion(10, []float64{5, 3, 2}, 1)
	if got[0]+got[1]+got[2] != 10 {
		t.Fatalf("apportion sum = %v", got)
	}
	if got[0] != 5 || got[1] != 3 || got[2] != 2 {
		t.Fatalf("apportion = %v, want [5 3 2]", got)
	}
	// Minimum enforcement.
	got = apportion(5, []float64{100, 0.001, 0.001}, 1)
	if got[1] < 1 || got[2] < 1 {
		t.Fatalf("minimums violated: %v", got)
	}
	sum := got[0] + got[1] + got[2]
	if sum != 5 {
		t.Fatalf("apportion with minimums sum = %d", sum)
	}
	// Zero weight gets nothing.
	got = apportion(4, []float64{1, 0}, 1)
	if got[1] != 0 {
		t.Fatalf("zero weight received cores: %v", got)
	}
}

// Property: apportion conserves the total (when feasible) and respects
// minimums for positive weights.
func TestPropertyApportion(t *testing.T) {
	f := func(nRaw uint8, wRaw []uint8) bool {
		if len(wRaw) == 0 {
			return true
		}
		if len(wRaw) > 8 {
			wRaw = wRaw[:8]
		}
		weights := make([]float64, len(wRaw))
		positive := 0
		for i, w := range wRaw {
			weights[i] = float64(w)
			if w > 0 {
				positive++
			}
		}
		n := int(nRaw)%64 + positive // always feasible
		got := apportion(n, weights, 1)
		sum := 0
		for i, g := range got {
			if weights[i] > 0 && g < 1 {
				return false
			}
			if weights[i] == 0 && g != 0 {
				return false
			}
			sum += g
		}
		return positive == 0 || sum == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCellLevelString(t *testing.T) {
	if CellPerCCD.String() != "ccd" || CellPerNUMA.String() != "numa" || CellPerSocket.String() != "socket" {
		t.Fatal("cell level names wrong")
	}
	if CellLevel(9).String() == "" {
		t.Fatal("unknown level should still render")
	}
}

// The headline sanity: on the paper's machine, the cell deployment beats
// the tuned baseline in the simulator. Exact magnitudes are asserted by
// the E7 experiment; here we only require the direction.
func TestCellsBeatTunedDirectionally(t *testing.T) {
	if testing.Short() {
		t.Skip("full-machine simulation")
	}
	mach := topology.Rome1S()
	run := func(d sim.Deployment, nearest bool) float64 {
		res, err := sim.Run(sim.Config{
			Machine: mach, Deployment: d, Users: 15000, Seed: 11,
			Warmup: 2e9, Measure: 6e9, RouteNearest: nearest,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Throughput
	}
	tuned := run(Tuned(mach, DefaultShares(), 8), false)
	cells, err := Cells(mach, DefaultShares(), CellPerCCD)
	if err != nil {
		t.Fatal(err)
	}
	opt := run(cells, true)
	if opt <= tuned {
		t.Fatalf("cells (%.0f req/s) should beat tuned (%.0f req/s)", opt, tuned)
	}
}
