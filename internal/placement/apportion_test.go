package placement

import (
	"testing"
	"testing/quick"
)

// Regression for the trim tiebreak: weights [9 8 1 1] at n=5, min=1
// floor to [2 2 1 1] (6 units) and must trim the *lighter* of the two
// 2-unit recipients. The old first-wins trim produced [1 2 1 1], giving
// weight 9 less than weight 8.
func TestApportionTrimPreservesMonotonicity(t *testing.T) {
	got := apportion(5, []float64{9, 8, 1, 1}, 1)
	want := []int{2, 1, 1, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("apportion(5, [9 8 1 1], 1) = %v, want %v", got, want)
		}
	}
}

// decode maps quick-generated raw bytes onto apportion's input domain:
// n ∈ [0,63], min ∈ [0,3], weights ∈ {0..15} (zeros included on purpose).
func decodeApportionCase(nRaw, minRaw uint8, wRaw []uint8) (n, min int, weights []float64) {
	n = int(nRaw % 64)
	min = int(minRaw % 4)
	weights = make([]float64, len(wRaw)%9)
	for i := range weights {
		weights[i] = float64(wRaw[i] % 16)
	}
	return
}

func TestApportionPropertySumsToN(t *testing.T) {
	prop := func(nRaw, minRaw uint8, wRaw []uint8) bool {
		n, min, weights := decodeApportionCase(nRaw, minRaw, wRaw)
		out := apportion(n, weights, min)
		positive := 0
		for _, w := range weights {
			if w > 0 {
				positive++
			}
		}
		sum := 0
		for _, v := range out {
			sum += v
		}
		if n <= 0 || positive == 0 {
			return sum == 0
		}
		// Minimums are a floor the trim never crosses, so the total is n
		// unless the floor itself exceeds n.
		want := n
		if floor := min * positive; floor > want {
			want = floor
		}
		return sum == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestApportionPropertyRespectsMin(t *testing.T) {
	prop := func(nRaw, minRaw uint8, wRaw []uint8) bool {
		n, min, weights := decodeApportionCase(nRaw, minRaw, wRaw)
		if n <= 0 {
			return true
		}
		out := apportion(n, weights, min)
		for i, w := range weights {
			if w > 0 && out[i] < min {
				return false
			}
			if w <= 0 && out[i] != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestApportionPropertyMonotoneInWeights(t *testing.T) {
	prop := func(nRaw, minRaw uint8, wRaw []uint8) bool {
		n, min, weights := decodeApportionCase(nRaw, minRaw, wRaw)
		out := apportion(n, weights, min)
		for i, wi := range weights {
			for j, wj := range weights {
				if wi > wj && out[i] < out[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
