package placement

// This file is the real-stack half of the package: where placement.go
// builds whole simulated deployments (sim.Deployment) for the paper's
// configuration sweep, Slot and Policy bind *live* replicas of the real
// TeaStore stack to topology cells one at a time, the way the scalectl
// reconciler scales — incrementally, replica by replica.
//
// A Slot is a CPU budget plus an affinity cell drawn from a
// topology.Machine model of the host. The stack cannot truly pin
// goroutines to cores, so a slot takes real effect through capacity: each
// replica's admission bound (ServiceMaxInflight-style inflight cap) is
// derived from the slot's *effective* core count — the budget discounted
// for cores shared with co-resident slots and for spans across L3 (CCX)
// boundaries. Packed placement loses capacity to straddling and
// overlap; CCX-aware placement keeps every replica inside one L3 domain
// and loses nothing. That capacity gap is the paper's headline effect,
// expressed through the -caps model the characterizer already uses.

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/topology"
)

// Slot is one replica's CPU budget and affinity cell.
type Slot struct {
	// Service is the replica's service name ("webui", "image", ...).
	Service string
	// Policy names the policy that assigned the slot.
	Policy string
	// Level is the cell granularity: LevelCCX or LevelNUMA for cell
	// policies, LevelCore for packed core runs.
	Level topology.Level
	// Cell is the cell id at Level (CCX id, NUMA node id, or the first
	// core id of a packed run).
	Cell int
	// CPUs is the affinity set: the logical CPUs the replica may run on.
	CPUs topology.CPUSet
	// Budget is the replica's CPU budget in physical cores; capacity is
	// derived from min(Budget, fair share of CPUs), never from the full
	// affinity set — a replica allowed to roam a NUMA node still only
	// gets Budget cores of work done.
	Budget int
}

// Label renders the slot as a compact registry/metrics label,
// e.g. "ccx:1/4-7,12-15" (level:cell/cpuset).
func (s Slot) Label() string {
	return fmt.Sprintf("%s:%d/%s", s.Level, s.Cell, s.CPUs.String())
}

func (s Slot) String() string {
	return fmt.Sprintf("%s %s budget=%d", s.Service, s.Label(), s.Budget)
}

// StraddlePenalty is the fractional capacity cost per additional CCX a
// slot's affinity set spans: threads migrating across L3 slices refill
// cache they already had, so a budget spread over k CCXs delivers
// 1/(1+StraddlePenalty·(k−1)) of its single-CCX capacity. Calibrated to
// the paper's observed cross-CCX degradation band.
const StraddlePenalty = 0.3

// Policy assigns slots to new replicas, one at a time. Implementations
// are stateless: each Assign decision is a pure function of the machine,
// the demand shares, and the slots currently live, so a reconciler and a
// stack holding separate policy instances with the same configuration
// make identical choices.
type Policy interface {
	// Name is the policy's configuration name: "packed", "ccx", "numa".
	Name() string
	// Machine is the topology model slots are drawn from.
	Machine() *topology.Machine
	// Assign picks the slot for a new replica of service given every slot
	// currently live (across all services — contention is machine-wide).
	Assign(service string, existing []Slot) (Slot, error)
}

// PolicyNames lists the valid NewPolicy names.
func PolicyNames() []string { return []string{"packed", "ccx", "numa"} }

// NewPolicy builds a named placement policy over a machine model.
// shares weights cell contention by per-service demand (nil falls back
// to DefaultNamedShares); slotCores is the per-replica CPU budget in
// physical cores (0 → 2).
func NewPolicy(name string, mach *topology.Machine, shares map[string]float64, slotCores int) (Policy, error) {
	if mach == nil {
		return nil, fmt.Errorf("placement: policy %q needs a machine model", name)
	}
	if slotCores <= 0 {
		slotCores = 2
	}
	if slotCores > mach.NumCores() {
		return nil, fmt.Errorf("placement: slot budget %d cores exceeds the %d-core machine", slotCores, mach.NumCores())
	}
	if shares == nil {
		shares = DefaultNamedShares()
	}
	switch name {
	case "packed":
		return &packedPolicy{mach: mach, slotCores: slotCores}, nil
	case "ccx":
		return newCellPolicy("ccx", topology.LevelCCX, mach, shares, slotCores)
	case "numa":
		return newCellPolicy("numa", topology.LevelNUMA, mach, shares, slotCores)
	default:
		return nil, fmt.Errorf("placement: unknown policy %q (have %s)", name, strings.Join(PolicyNames(), ", "))
	}
}

// DefaultNamedShares is DefaultShares keyed by service name — the form
// the real stack (which does not speak sim.Service) consumes.
func DefaultNamedShares() map[string]float64 {
	out := map[string]float64{}
	for svc, share := range DefaultShares() {
		out[svc.String()] = share
	}
	return out
}

// packedPolicy pins replicas to contiguous core runs in arrival order,
// ignoring CCX boundaries and wrapping at the end of the machine — naive
// pinning, the paper's "packed" configuration. The cursor is derived
// from the live slots, keeping Assign stateless.
type packedPolicy struct {
	mach      *topology.Machine
	slotCores int
}

func (p *packedPolicy) Name() string               { return "packed" }
func (p *packedPolicy) Machine() *topology.Machine { return p.mach }

func (p *packedPolicy) Assign(service string, existing []Slot) (Slot, error) {
	cursor := 0
	for _, s := range existing {
		cursor += s.Budget
	}
	var set topology.CPUSet
	first := cursor % p.mach.NumCores()
	for i := 0; i < p.slotCores; i++ {
		core := (cursor + i) % p.mach.NumCores()
		for _, id := range p.mach.CoreSiblings(core) {
			set.Add(id)
		}
	}
	return Slot{
		Service: service, Policy: "packed",
		Level: topology.LevelCore, Cell: first,
		CPUs: set, Budget: p.slotCores,
	}, nil
}

// cellPolicy places each replica in the least-contended cell at its
// level, where contention is the demand-share-weighted population of
// slots already overlapping the cell. The slot's affinity is the whole
// cell — cell-mates share it — and its budget stays slotCores.
type cellPolicy struct {
	name      string
	level     topology.Level
	mach      *topology.Machine
	shares    map[string]float64
	slotCores int
	cells     []topology.CPUSet
}

func newCellPolicy(name string, level topology.Level, mach *topology.Machine, shares map[string]float64, slotCores int) (*cellPolicy, error) {
	p := &cellPolicy{name: name, level: level, mach: mach, shares: shares, slotCores: slotCores}
	switch level {
	case topology.LevelCCX:
		for i := 0; i < mach.NumCCXs(); i++ {
			p.cells = append(p.cells, mach.CPUsOfCCX(i))
		}
	case topology.LevelNUMA:
		for i := 0; i < mach.NumNUMA(); i++ {
			p.cells = append(p.cells, mach.CPUsOfNUMA(i))
		}
	default:
		return nil, fmt.Errorf("placement: no cell policy at level %v", level)
	}
	return p, nil
}

func (p *cellPolicy) Name() string               { return p.name }
func (p *cellPolicy) Machine() *topology.Machine { return p.mach }

// weight is a service's contention contribution: its demand share, or
// the mean share for services the map does not know.
func (p *cellPolicy) weight(service string) float64 {
	if w, ok := p.shares[service]; ok && w > 0 {
		return w
	}
	if len(p.shares) == 0 {
		return 1
	}
	total := 0.0
	for _, w := range p.shares {
		total += w
	}
	return total / float64(len(p.shares))
}

func (p *cellPolicy) Assign(service string, existing []Slot) (Slot, error) {
	best, bestLoad := -1, 0.0
	for i, cell := range p.cells {
		load := 0.0
		for _, s := range existing {
			inter := s.CPUs.Intersect(cell).Count()
			if inter == 0 {
				continue
			}
			// A slot straddling cells contributes proportionally to each.
			load += p.weight(s.Service) * float64(inter) / float64(s.CPUs.Count())
		}
		if best < 0 || load < bestLoad {
			best, bestLoad = i, load
		}
	}
	if best < 0 {
		return Slot{}, fmt.Errorf("placement: %s policy has no cells on %s", p.name, p.mach.Name())
	}
	return Slot{
		Service: service, Policy: p.name,
		Level: p.level, Cell: best,
		CPUs: p.cells[best].Clone(), Budget: p.slotCores,
	}, nil
}

// EffectiveCores is the capacity a slot actually delivers, in physical
// cores: the fair share of its affinity cores (cores host every slot
// whose affinity includes them, splitting evenly), capped at the slot's
// budget, then discounted for every additional CCX the affinity set
// spans (StraddlePenalty). all must include slot itself.
func EffectiveCores(slot Slot, all []Slot, mach *topology.Machine) float64 {
	occupancy := map[int]int{} // physical core → number of slots on it
	for _, s := range all {
		for _, core := range coresOfSet(mach, s.CPUs) {
			occupancy[core]++
		}
	}
	fair := 0.0
	ccxs := map[int]bool{}
	for _, core := range coresOfSet(mach, slot.CPUs) {
		if n := occupancy[core]; n > 0 {
			fair += 1 / float64(n)
		}
		ccxs[mach.CPU(mach.CoreSiblings(core)[0]).CCX] = true
	}
	if fair > float64(slot.Budget) {
		fair = float64(slot.Budget)
	}
	if span := len(ccxs); span > 1 {
		fair /= 1 + StraddlePenalty*float64(span-1)
	}
	return fair
}

// SlotCap converts a slot's effective cores into an inflight admission
// bound at capPerCore concurrent requests per core (0 → 2), flooring so
// the budget never promises more than the hardware and never less than
// one admitted request.
func SlotCap(slot Slot, all []Slot, mach *topology.Machine, capPerCore int) int {
	if capPerCore <= 0 {
		capPerCore = 2
	}
	n := int(EffectiveCores(slot, all, mach) * float64(capPerCore))
	if n < 1 {
		n = 1
	}
	return n
}

// coresOfSet lists the distinct physical cores a CPU set touches, in
// ascending order.
func coresOfSet(mach *topology.Machine, set topology.CPUSet) []int {
	seen := map[int]bool{}
	var out []int
	set.ForEach(func(id int) {
		if !mach.ValidCPU(id) {
			return
		}
		c := mach.CPU(id).Core
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	})
	sort.Ints(out)
	return out
}

// SlotsByService groups a slot list by service name, preserving order —
// the shape reports and the topoviz renderer consume.
func SlotsByService(slots []Slot) map[string][]Slot {
	out := map[string][]Slot{}
	for _, s := range slots {
		out[s.Service] = append(out[s.Service], s)
	}
	return out
}
