package placement

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/topology"
)

// Cells must reject degenerate inputs with an error — never panic, never
// emit instances with empty affinity sets.
func TestCellsEdgeCases(t *testing.T) {
	small := topology.Small()
	cases := []struct {
		name    string
		mach    *topology.Machine
		shares  Shares
		level   CellLevel
		wantErr bool
	}{
		{"default shares ok", small, DefaultShares(), CellPerCCD, false},
		{"nil machine", nil, DefaultShares(), CellPerCCD, true},
		{"nil shares", small, nil, CellPerCCD, true},
		{"all-zero shares", small, Shares{sim.WebUI: 0, sim.Auth: 0}, CellPerCCD, true},
		{"negative shares", small, Shares{sim.WebUI: -1, sim.Auth: -2}, CellPerCCD, true},
		{"missing webui share", small, Shares{sim.Auth: 1, sim.Image: 1}, CellPerCCD, true},
		{"registry-only shares", small, Shares{sim.Registry: 1}, CellPerCCD, true},
		{"single-core machine", topology.MustNew(topology.MonolithicConfig(1)), DefaultShares(), CellPerCCD, true},
		{"cell smaller than replica set", topology.MustNew(topology.MonolithicConfig(3)), DefaultShares(), CellPerCCD, true},
		{"unknown level", small, DefaultShares(), CellLevel(99), true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d, err := Cells(tc.mach, tc.shares, tc.level)
			if tc.wantErr {
				if err == nil {
					t.Fatalf("Cells accepted degenerate input, deployment %+v", d)
				}
				return
			}
			if err != nil {
				t.Fatalf("Cells: %v", err)
			}
			for _, inst := range d.Instances {
				if inst.Affinity.Empty() {
					t.Fatalf("instance %v has an empty affinity set", inst.Service)
				}
			}
		})
	}
}
