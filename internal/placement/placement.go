// Package placement builds deployments — assignments of service instances
// to CPU sets, worker-pool sizes, and memory homes — for the configurations
// the paper sweeps:
//
//   - OSDefault: one unpinned instance per service, interleaved memory —
//     what you get from running the containers with no tuning.
//   - Tuned: replication counts sized from per-service demand shares, but
//     still unpinned — the paper's "performance-tuned baseline".
//   - Packed: the tuned replica set pinned to contiguous cores with no
//     regard for CCX boundaries — naive pinning.
//   - Cells: the topology-aware configuration — the machine is partitioned
//     into cells (CCDs or NUMA nodes), each running a full replica set on
//     disjoint per-service core groups with local memory; combined with
//     nearest-replica routing this keeps RPC and DRAM traffic inside the
//     cell. This is the configuration that delivers the paper's headline
//     +22 % throughput / −18 % latency over Tuned.
package placement

import (
	"fmt"
	"sort"

	"repro/internal/sim"
	"repro/internal/topology"
)

// Shares maps services to their fraction of total CPU demand. The core
// package computes these analytically from the workload; DefaultShares
// provides a calibrated fallback.
type Shares map[sim.Service]float64

// Normalize returns shares scaled to sum to 1 over the services present.
func (s Shares) Normalize() Shares {
	total := 0.0
	for _, v := range s {
		if v > 0 {
			total += v
		}
	}
	out := Shares{}
	if total <= 0 {
		return out
	}
	for k, v := range s {
		if v > 0 {
			out[k] = v / total
		}
	}
	return out
}

// DefaultShares returns demand shares measured from the default request
// specs under the browse profile (see core.AnalyticShares).
func DefaultShares() Shares {
	return Shares{
		sim.WebUI:       0.36,
		sim.Image:       0.20,
		sim.Persistence: 0.15,
		sim.Auth:        0.12,
		sim.Recommender: 0.16,
		sim.Registry:    0.01,
	}
}

// OSDefault returns the untuned deployment: one unpinned instance per
// service.
func OSDefault(mach *topology.Machine) sim.Deployment {
	return sim.Unpinned(mach, "os-default", nil)
}

// TunedReplicas derives replica counts from shares: each service gets
// enough instances that none is asked to scale past coresPerInstance
// cores of demand.
func TunedReplicas(mach *topology.Machine, shares Shares, coresPerInstance int) map[sim.Service]int {
	if coresPerInstance <= 0 {
		coresPerInstance = 2
	}
	norm := shares.Normalize()
	out := map[sim.Service]int{}
	for _, s := range sim.AllServices() {
		cores := norm[s] * float64(mach.NumCores())
		n := int(cores/float64(coresPerInstance) + 0.5)
		if n < 1 {
			n = 1
		}
		out[s] = n
	}
	out[sim.Registry] = 1
	return out
}

// Tuned returns the replicated-but-unpinned baseline.
func Tuned(mach *topology.Machine, shares Shares, coresPerInstance int) sim.Deployment {
	d := sim.Unpinned(mach, "tuned", TunedReplicas(mach, shares, coresPerInstance))
	return d
}

// coreAlloc hands out physical cores in topological order.
type coreAlloc struct {
	mach *topology.Machine
	next int
}

// take returns the CPU set of the next n cores (all SMT threads),
// wrapping at the end of the machine.
func (a *coreAlloc) take(n int) topology.CPUSet {
	var set topology.CPUSet
	for i := 0; i < n; i++ {
		core := a.next % a.mach.NumCores()
		a.next++
		for _, id := range a.mach.CoreSiblings(core) {
			set.Add(id)
		}
	}
	return set
}

// workersFor sizes an instance's pool for its CPU allotment. WebUI workers
// block on downstream calls for the whole request, so they get large
// headroom beyond their CPUs (Tomcat-style pools).
func workersFor(s sim.Service, logicalCPUs int) int {
	mult := 4
	if s == sim.WebUI {
		mult = 16
	}
	w := mult * logicalCPUs
	if w < 8 {
		w = 8
	}
	if w > 512 {
		w = 512
	}
	return w
}

// apportion splits n units across weights using largest remainder, each
// recipient with weight > 0 getting at least min.
func apportion(n int, weights []float64, min int) []int {
	total := 0.0
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	out := make([]int, len(weights))
	if total <= 0 || n <= 0 {
		return out
	}
	type frac struct {
		i int
		f float64
	}
	var fracs []frac
	used := 0
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		exact := float64(n) * w / total
		out[i] = int(exact)
		if out[i] < min {
			out[i] = min
		}
		used += out[i]
		// Remainder is relative to what was actually allocated, so a
		// minimum-bumped recipient does not also win remainder units.
		fracs = append(fracs, frac{i, exact - float64(out[i])})
	}
	sort.Slice(fracs, func(a, b int) bool {
		if fracs[a].f != fracs[b].f {
			return fracs[a].f > fracs[b].f
		}
		return fracs[a].i < fracs[b].i
	})
	for k := 0; used < n && len(fracs) > 0; k++ {
		out[fracs[k%len(fracs)].i]++
		used++
	}
	// Over-allocation from minimums: trim from the largest allocation,
	// breaking ties toward the smallest weight so a heavier service never
	// ends up with fewer units than a lighter one.
	for used > n {
		big := -1
		for i := range out {
			if out[i] <= min || weights[i] <= 0 {
				continue
			}
			if big < 0 || out[i] > out[big] || (out[i] == out[big] && weights[i] < weights[big]) {
				big = i
			}
		}
		if big < 0 {
			break
		}
		out[big]--
		used--
	}
	return out
}

// Packed pins the tuned replica set to contiguous core runs in service
// order, ignoring CCX/CCD boundaries. Memory is homed on the node of each
// instance's first core.
func Packed(mach *topology.Machine, shares Shares, coresPerInstance int) sim.Deployment {
	norm := shares.Normalize()
	replicas := TunedReplicas(mach, shares, coresPerInstance)
	d := sim.Deployment{Name: "packed"}
	alloc := &coreAlloc{mach: mach}

	// Reserve one core for the registry at the end.
	budget := mach.NumCores() - 1
	services := []sim.Service{sim.WebUI, sim.Auth, sim.Persistence, sim.Recommender, sim.Image}
	weights := make([]float64, len(services))
	for i, s := range services {
		weights[i] = norm[s]
	}
	cores := apportion(budget, weights, 1)
	for i, s := range services {
		n := replicas[s]
		per := apportion(cores[i], uniform(n), 1)
		for r := 0; r < n; r++ {
			set := alloc.take(per[r])
			d.Instances = append(d.Instances, sim.InstanceSpec{
				Service:  s,
				Affinity: set,
				Workers:  workersFor(s, set.Count()),
				HomeNUMA: homeOf(mach, set),
			})
		}
	}
	regSet := alloc.take(1)
	d.Instances = append(d.Instances, sim.InstanceSpec{
		Service: sim.Registry, Affinity: regSet, Workers: 4, HomeNUMA: homeOf(mach, regSet),
	})
	return d
}

// uniform returns n equal weights.
func uniform(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = 1
	}
	return out
}

// homeOf returns the NUMA node containing the plurality of the set.
func homeOf(mach *topology.Machine, set topology.CPUSet) int {
	counts := make([]int, mach.NumNUMA())
	set.ForEach(func(id int) { counts[mach.CPU(id).NUMA]++ })
	best := 0
	for n, c := range counts {
		if c > counts[best] {
			best = n
		}
	}
	return best
}

// CellLevel selects the partition granularity for Cells.
type CellLevel int

// Cell granularities.
const (
	CellPerCCD CellLevel = iota
	CellPerNUMA
	CellPerSocket
)

func (l CellLevel) String() string {
	switch l {
	case CellPerCCD:
		return "ccd"
	case CellPerNUMA:
		return "numa"
	case CellPerSocket:
		return "socket"
	default:
		return fmt.Sprintf("celllevel(%d)", int(l))
	}
}

// Cells builds the topology-aware deployment: the machine is split into
// cells at the given level; each cell hosts one replica of every service
// (except Registry) on disjoint per-service core groups, with memory homed
// locally. Use sim.Config.RouteNearest with this deployment so WebUI
// replicas call their cell-mates.
func Cells(mach *topology.Machine, shares Shares, level CellLevel) (sim.Deployment, error) {
	if mach == nil {
		return sim.Deployment{}, fmt.Errorf("placement: Cells needs a machine")
	}
	cells, err := cellCores(mach, level)
	if err != nil {
		return sim.Deployment{}, err
	}
	norm := shares.Normalize()
	services := []sim.Service{sim.WebUI, sim.Auth, sim.Persistence, sim.Recommender, sim.Image}
	weights := make([]float64, len(services))
	for i, s := range services {
		weights[i] = norm[s]
		// Every cell hosts a full replica set, so a service with no demand
		// share cannot be sized — refuse rather than emit an instance with
		// an empty affinity set.
		if weights[i] <= 0 {
			return sim.Deployment{}, fmt.Errorf("placement: shares give %s no demand; every replicable service needs a positive share", s)
		}
	}

	d := sim.Deployment{Name: "cells-" + level.String()}
	for _, cell := range cells {
		if len(cell) < len(services) {
			return sim.Deployment{}, fmt.Errorf("placement: cell of %d cores cannot host %d services", len(cell), len(services))
		}
		per := apportion(len(cell), weights, 1)
		idx := 0
		for i, s := range services {
			var set topology.CPUSet
			for c := 0; c < per[i]; c++ {
				for _, id := range mach.CoreSiblings(cell[idx]) {
					set.Add(id)
				}
				idx++
			}
			d.Instances = append(d.Instances, sim.InstanceSpec{
				Service:  s,
				Affinity: set,
				Workers:  workersFor(s, set.Count()),
				HomeNUMA: homeOf(mach, set),
			})
		}
	}
	// One registry, sharing the first cell's last core.
	last := cells[0][len(cells[0])-1]
	var regSet topology.CPUSet
	for _, id := range mach.CoreSiblings(last) {
		regSet.Add(id)
	}
	d.Instances = append(d.Instances, sim.InstanceSpec{
		Service: sim.Registry, Affinity: regSet, Workers: 4, HomeNUMA: homeOf(mach, regSet),
	})
	return d, nil
}

// cellCores lists each cell's physical core ids.
func cellCores(mach *topology.Machine, level CellLevel) ([][]int, error) {
	coresOf := func(set topology.CPUSet) []int {
		seen := map[int]bool{}
		var out []int
		set.ForEach(func(id int) {
			c := mach.CPU(id).Core
			if !seen[c] {
				seen[c] = true
				out = append(out, c)
			}
		})
		sort.Ints(out)
		return out
	}
	var cells [][]int
	switch level {
	case CellPerCCD:
		// Group CCXs of each CCD.
		perCCD := map[int][]int{}
		for core := 0; core < mach.NumCores(); core++ {
			ccd := mach.CPU(mach.CoreSiblings(core)[0]).CCD
			perCCD[ccd] = append(perCCD[ccd], core)
		}
		for ccd := 0; ccd < mach.NumCCDs(); ccd++ {
			cells = append(cells, perCCD[ccd])
		}
	case CellPerNUMA:
		for n := 0; n < mach.NumNUMA(); n++ {
			cells = append(cells, coresOf(mach.CPUsOfNUMA(n)))
		}
	case CellPerSocket:
		for s := 0; s < mach.NumSockets(); s++ {
			cells = append(cells, coresOf(mach.CPUsOfSocket(s)))
		}
	default:
		return nil, fmt.Errorf("placement: unknown cell level %v", level)
	}
	return cells, nil
}
