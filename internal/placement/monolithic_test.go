package placement

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/topology"
)

// A monolithic-L3 (Intel-like) part: one CCX spanning the socket. The
// builders must still produce valid deployments — there is just no CCX
// boundary for placement to exploit.
func TestBuildersOnMonolithicMachine(t *testing.T) {
	mach := topology.MustNew(topology.MonolithicConfig(28))
	if mach.NumCCXs() != 1 {
		t.Fatalf("monolithic machine has %d CCXs", mach.NumCCXs())
	}
	for name, d := range map[string]sim.Deployment{
		"os-default": OSDefault(mach),
		"tuned":      Tuned(mach, DefaultShares(), 0),
		"packed":     Packed(mach, DefaultShares(), 0),
	} {
		if err := d.Validate(mach); err != nil {
			t.Fatalf("%s on monolithic: %v", name, err)
		}
	}
	cells, err := Cells(mach, DefaultShares(), CellPerCCD)
	if err != nil {
		t.Fatal(err)
	}
	if err := cells.Validate(mach); err != nil {
		t.Fatal(err)
	}
	// One CCD → one cell → one replica per service.
	if cells.Replicas(sim.WebUI) != 1 {
		t.Fatalf("monolithic cells webui replicas = %d", cells.Replicas(sim.WebUI))
	}
}

func TestPackedWrapsAllocatorSafely(t *testing.T) {
	// Tiny machine forces the allocator to hand out every core; the
	// registry core must still be available via wrap-around.
	mach := topology.Small() // 8 cores
	d := Packed(mach, DefaultShares(), 1)
	if err := d.Validate(mach); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, inst := range d.Instances {
		total += inst.Affinity.Count()
	}
	if total < mach.NumCPUs() {
		t.Fatalf("packed left CPUs unassigned: %d of %d", total, mach.NumCPUs())
	}
}

func TestTunedReplicasRespectCoresPerInstance(t *testing.T) {
	mach := topology.Rome1S()
	fine := TunedReplicas(mach, DefaultShares(), 2)
	coarse := TunedReplicas(mach, DefaultShares(), 16)
	for _, s := range []sim.Service{sim.WebUI, sim.Image, sim.Persistence} {
		if fine[s] < coarse[s] {
			t.Fatalf("%v: finer sizing gave fewer replicas (%d < %d)", s, fine[s], coarse[s])
		}
	}
}
